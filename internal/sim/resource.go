package sim

import (
	"time"
)

// Resource is a capacity-limited FIFO service station: up to Capacity
// requests are in service concurrently, the rest wait in arrival order.
// Disks, the DNS wire, and worker pools are all Resources.
type Resource struct {
	eng      *Engine
	capacity int

	busy  int
	queue []*resourceReq

	// Statistics.
	completed int64
	busyTime  time.Duration
	waited    time.Duration
	maxQueue  int
}

type resourceReq struct {
	service  time.Duration
	done     func()
	enqueued time.Duration
}

// NewResource returns a resource bound to the engine with the given
// concurrent capacity (≥ 1).
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Submit enqueues a request with the given service demand; done (which may
// be nil) fires at completion. Requests are served FIFO.
func (r *Resource) Submit(service time.Duration, done func()) {
	if service < 0 {
		service = 0
	}
	req := &resourceReq{service: service, done: done, enqueued: r.eng.Now()}
	if r.busy < r.capacity {
		r.start(req)
		return
	}
	r.queue = append(r.queue, req)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
}

func (r *Resource) start(req *resourceReq) {
	r.busy++
	r.waited += r.eng.Now() - req.enqueued
	r.busyTime += req.service
	r.eng.After(req.service, func() {
		r.busy--
		r.completed++
		if req.done != nil {
			req.done()
		}
		r.dispatch()
	})
}

func (r *Resource) dispatch() {
	for r.busy < r.capacity && len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.start(next)
	}
}

// QueueLen returns the number of waiting (not in-service) requests.
func (r *Resource) QueueLen() int { return len(r.queue) }

// InService returns the number of requests currently in service.
func (r *Resource) InService() int { return r.busy }

// Completed returns the number of finished requests.
func (r *Resource) Completed() int64 { return r.completed }

// BusyTime returns the total service time delivered (across all slots).
func (r *Resource) BusyTime() time.Duration { return r.busyTime }

// TotalWait returns the aggregate queueing delay experienced by started
// requests.
func (r *Resource) TotalWait() time.Duration { return r.waited }

// MaxQueue returns the high-water mark of the waiting queue.
func (r *Resource) MaxQueue() int { return r.maxQueue }

// Utilization returns busy time divided by capacity × elapsed, in [0, 1]
// for a well-formed run.
func (r *Resource) Utilization() float64 {
	elapsed := r.eng.Now()
	if elapsed <= 0 {
		return 0
	}
	return r.busyTime.Seconds() / (float64(r.capacity) * elapsed.Seconds())
}

// CPU is a single-core processor model with context-switch accounting.
// Work items carry an owner (a process id); whenever the CPU dispatches
// work belonging to a different owner than the previous item, it charges a
// context-switch penalty. The penalty may grow with the number of
// runnable owners via the SwitchCost hook, reproducing the §3 observation
// that postfix throughput degrades past 500 smtpd processes.
type CPU struct {
	eng *Engine

	// SwitchCost returns the context-switch penalty as a function of the
	// current number of distinct runnable owners. Defaults to a constant
	// if nil (see NewCPU).
	SwitchCost func(runnableOwners int) time.Duration

	busy      bool
	queue     []*cpuReq
	lastOwner int

	switches  int64
	completed int64
	busyTime  time.Duration
	runnable  map[int]int // owner -> queued item count
}

type cpuReq struct {
	owner   int
	service time.Duration
	done    func()
}

// NewCPU returns a CPU with a constant context-switch cost.
func NewCPU(eng *Engine, switchCost time.Duration) *CPU {
	c := &CPU{eng: eng, lastOwner: -1, runnable: make(map[int]int)}
	c.SwitchCost = func(int) time.Duration { return switchCost }
	return c
}

// Run enqueues a burst of CPU work for the given owner; done (may be nil)
// fires when the burst completes.
func (c *CPU) Run(owner int, service time.Duration, done func()) {
	if service < 0 {
		service = 0
	}
	req := &cpuReq{owner: owner, service: service, done: done}
	c.runnable[owner]++
	if !c.busy {
		c.start(req)
		return
	}
	c.queue = append(c.queue, req)
}

func (c *CPU) start(req *cpuReq) {
	c.busy = true
	cost := req.service
	if req.owner != c.lastOwner {
		penalty := c.SwitchCost(len(c.runnable))
		cost += penalty
		c.switches++
		c.lastOwner = req.owner
	}
	c.busyTime += cost
	c.eng.After(cost, func() {
		c.busy = false
		c.completed++
		c.runnable[req.owner]--
		if c.runnable[req.owner] == 0 {
			delete(c.runnable, req.owner)
		}
		if req.done != nil {
			req.done()
		}
		c.dispatch()
	})
}

// batchScan bounds how far dispatch searches for same-owner work.
const batchScan = 64

func (c *CPU) dispatch() {
	if c.busy || len(c.queue) == 0 {
		return
	}
	// Prefer queued work belonging to the currently resident owner: a
	// real scheduler runs out a timeslice and an event loop drains its
	// ready events before yielding, so same-owner bursts batch without
	// context switches. The scan is bounded to keep dispatch cheap.
	pick := 0
	if c.queue[0].owner != c.lastOwner {
		limit := len(c.queue)
		if limit > batchScan {
			limit = batchScan
		}
		for i := 1; i < limit; i++ {
			if c.queue[i].owner == c.lastOwner {
				pick = i
				break
			}
		}
	}
	next := c.queue[pick]
	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	c.start(next)
}

// Switches returns the number of context switches charged so far.
func (c *CPU) Switches() int64 { return c.switches }

// Completed returns the number of completed bursts.
func (c *CPU) Completed() int64 { return c.completed }

// BusyTime returns total CPU time consumed including switch penalties.
func (c *CPU) BusyTime() time.Duration { return c.busyTime }

// QueueLen returns the number of queued (not running) bursts.
func (c *CPU) QueueLen() int { return len(c.queue) }

// Utilization returns busy time / elapsed time.
func (c *CPU) Utilization() float64 {
	elapsed := c.eng.Now()
	if elapsed <= 0 {
		return 0
	}
	return c.busyTime.Seconds() / elapsed.Seconds()
}
