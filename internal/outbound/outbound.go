// Package outbound implements the SMTP client side of the queue: a
// Deliverer that resolves a destination domain's MX records, dials the
// candidates in preference order, and runs one SMTP transaction per
// destination with per-command deadlines. It is the "smtp client"
// process of the paper's Figure 2 architecture — the piece that turns a
// spooled queue item into a remote delivery, and the piece whose
// failures feed the per-destination backoff scheduler and, eventually,
// the DSN generator.
package outbound

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/dns"
	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/queue"
	"repro/internal/smtp"
	"repro/internal/trace"
)

// MX is one mail-exchanger candidate for a destination domain.
type MX struct {
	Host string
	Pref uint16
}

// Resolver turns a destination domain into MX candidates.
type Resolver interface {
	LookupMX(ctx context.Context, domain string) ([]MX, error)
}

// ---------------------------------------------------------------------------
// Static resolver

// Static is a fixed MX table for simulations and tests: deterministic,
// no sockets. Unknown domains resolve to nothing and fail delivery.
type Static struct {
	table atomic.Value // map[string][]MX, copy-on-write
}

// NewStatic returns an empty static resolver.
func NewStatic() *Static {
	s := &Static{}
	s.table.Store(map[string][]MX{})
	return s
}

// Set replaces domain's MX candidates.
func (s *Static) Set(domain string, mxs ...MX) {
	old, _ := s.table.Load().(map[string][]MX)
	next := make(map[string][]MX, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[strings.ToLower(domain)] = append([]MX(nil), mxs...)
	s.table.Store(next)
}

// LookupMX implements Resolver.
func (s *Static) LookupMX(_ context.Context, domain string) ([]MX, error) {
	m, _ := s.table.Load().(map[string][]MX)
	mxs, ok := m[strings.ToLower(domain)]
	if !ok {
		return nil, fmt.Errorf("outbound: no MX table entry for %q", domain)
	}
	return append([]MX(nil), mxs...), nil
}

// ---------------------------------------------------------------------------
// DNS resolver

// DNSResolver resolves MX sets through a dns.Transport (the same
// transport layer the DNSBL path uses, so MX lookups ride the pipelined
// resolver when one is configured).
type DNSResolver struct {
	transport dns.Transport
	nextID    atomic.Uint32
}

// NewDNSResolver returns a resolver querying transport.
func NewDNSResolver(t dns.Transport) *DNSResolver {
	return &DNSResolver{transport: t}
}

// LookupMX implements Resolver: a TypeMX query, falling back to the
// implicit MX (the domain itself at preference 0, RFC 5321 §5.1) when
// the answer section has no usable MX records.
func (r *DNSResolver) LookupMX(ctx context.Context, domain string) ([]MX, error) {
	id := uint16(r.nextID.Add(1))
	resp, err := r.transport.Query(ctx, dns.NewQuery(id, domain, dns.TypeMX))
	if err != nil {
		return nil, fmt.Errorf("outbound: MX %s: %w", domain, err)
	}
	if resp.RCode == dns.RCodeNXDomain {
		return nil, fmt.Errorf("outbound: MX %s: no such domain", domain)
	}
	if resp.RCode != dns.RCodeNoError {
		return nil, fmt.Errorf("outbound: MX %s: rcode %d", domain, resp.RCode)
	}
	var mxs []MX
	for _, rr := range resp.Answers {
		if rr.Type != dns.TypeMX {
			continue
		}
		pref, host, err := rr.MX()
		if err != nil {
			continue // one bad record must not poison the answer set
		}
		mxs = append(mxs, MX{Host: host, Pref: pref})
	}
	if len(mxs) == 0 {
		// Implicit MX: a domain with no MX records is its own exchanger.
		mxs = []MX{{Host: domain, Pref: 0}}
	}
	return mxs, nil
}

// ---------------------------------------------------------------------------
// Deliverer

// Config parameterizes a Deliverer.
type Config struct {
	// Resolver maps destination domains to MX candidates; required.
	Resolver Resolver
	// Helo is the EHLO/HELO name presented to remote servers (default
	// "localhost").
	Helo string
	// Port is appended to MX hosts that carry no port (default "25";
	// simulations use loopback hosts with explicit ports).
	Port string
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// CommandTimeout bounds each SMTP command round trip (default 30s),
	// applied via smtp.WithCommandTimeout.
	CommandTimeout time.Duration
	// ResolveTimeout bounds each MX lookup (default 5s).
	ResolveTimeout time.Duration
	// Tracker, if non-nil, receives per-destination success/failure for
	// the reputation EWMA.
	Tracker *policy.DestTracker
	// Registry receives outbound metrics; nil means a private registry.
	Registry *metrics.Registry
	// Events, if non-nil, receives outbound.delivered / outbound.fail.
	Events *eventlog.Log
	// Tracer, if non-nil, records an "outbound" message-lifecycle span
	// per SMTP transaction (note: the MX host). When the item carries a
	// trace context and the remote peer advertises XTRACE, the context
	// is forwarded as a MAIL parameter so the next hop's spans join the
	// same trace; non-supporting peers see a plain MAIL FROM.
	Tracer *trace.MessageRecorder
	// DialFunc overrides the dialer (tests). It must return a connected,
	// greeted client.
	DialFunc func(addr string) (*smtp.Client, error)
}

// Deliverer delivers queue items to their destination domains over
// SMTP. It implements queue.Deliverer.
type Deliverer struct {
	cfg Config

	attempts  *metrics.Counter
	delivered *metrics.Counter
	failures  *metrics.Counter
	failovers *metrics.Counter
}

var _ queue.Deliverer = (*Deliverer)(nil)

// New returns a Deliverer.
func New(cfg Config) (*Deliverer, error) {
	if cfg.Resolver == nil {
		return nil, errors.New("outbound: Resolver is required")
	}
	if cfg.Helo == "" {
		cfg.Helo = "localhost"
	}
	if cfg.Port == "" {
		cfg.Port = "25"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.CommandTimeout <= 0 {
		cfg.CommandTimeout = 30 * time.Second
	}
	if cfg.ResolveTimeout <= 0 {
		cfg.ResolveTimeout = 5 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	d := &Deliverer{
		cfg:       cfg,
		attempts:  reg.Counter("outbound_attempts_total"),
		delivered: reg.Counter("outbound_delivered_total"),
		failures:  reg.Counter("outbound_failures_total"),
		failovers: reg.Counter("outbound_mx_failover_total"),
	}
	if cfg.DialFunc == nil {
		d.cfg.DialFunc = d.dial
	}
	return d, nil
}

func (d *Deliverer) dial(addr string) (*smtp.Client, error) {
	return smtp.Dial(addr, d.cfg.DialTimeout,
		smtp.WithCommandTimeout(d.cfg.CommandTimeout))
}

// Deliver implements queue.Deliverer. Recipients are grouped by
// destination domain and each group gets its own MX walk and SMTP
// transaction. On partial failure it shrinks item.Rcpts to the
// recipients still owed delivery — the queue persists that shrunk
// envelope on deferral, so retries (and post-crash recoveries) never
// redeliver to a domain that already accepted the mail.
func (d *Deliverer) Deliver(item *queue.Item) error {
	groups, order := groupByDomain(item.Rcpts)
	var failed []string
	var errs []string
	for _, domain := range order {
		rcpts := groups[domain]
		if err := d.deliverDomain(domain, item.Sender, rcpts, item.Data, item.Trace); err != nil {
			failed = append(failed, rcpts...)
			errs = append(errs, err.Error())
			continue
		}
		d.cfg.Events.Debug("outbound.delivered", 0,
			eventlog.Str("id", item.ID),
			eventlog.Str("dest", domain),
			eventlog.Int("rcpts", int64(len(rcpts))),
		)
	}
	if len(failed) == 0 {
		return nil
	}
	item.Rcpts = failed
	return fmt.Errorf("outbound: %s", strings.Join(errs, "; "))
}

// deliverDomain walks domain's MX candidates in preference order and
// runs one transaction against the first that works.
func (d *Deliverer) deliverDomain(domain, sender string, rcpts []string, data []byte, tc trace.Context) error {
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.ResolveTimeout)
	mxs, err := d.cfg.Resolver.LookupMX(ctx, domain)
	cancel()
	if err != nil {
		d.attempts.Inc()
		d.fail(domain, err)
		return err
	}
	sort.SliceStable(mxs, func(i, j int) bool { return mxs[i].Pref < mxs[j].Pref })
	var last error
	for i, mx := range mxs {
		if i > 0 {
			d.failovers.Inc()
		}
		d.attempts.Inc()
		if err := d.transact(mx.Host, sender, rcpts, data, tc); err != nil {
			last = err
			d.fail(domain, fmt.Errorf("mx %s: %w", mx.Host, err))
			continue
		}
		d.delivered.Inc()
		if d.cfg.Tracker != nil {
			d.cfg.Tracker.RecordSuccess(domain)
		}
		return nil
	}
	if last == nil {
		last = fmt.Errorf("outbound: no MX candidates for %q", domain)
		d.fail(domain, last)
	}
	return last
}

// transact runs one SMTP transaction against host. EHLO is tried first
// (falling back to HELO) so the remote's extensions are known; when the
// item is traced and the peer supports XTRACE the outbound span's
// context crosses the wire with MAIL FROM.
func (d *Deliverer) transact(host, sender string, rcpts []string, data []byte, tc trace.Context) error {
	addr := host
	if _, _, err := net.SplitHostPort(host); err != nil {
		addr = net.JoinHostPort(host, d.cfg.Port)
	}
	start := time.Now()
	sp := d.cfg.Tracer.NewSpan(tc)
	c, err := d.cfg.DialFunc(addr)
	if err != nil {
		return err
	}
	if err := c.Hello(d.cfg.Helo); err != nil {
		_ = c.Abort()
		return err
	}
	accepted, err := c.SendTraced(sender, rcpts, data, sp)
	if err != nil {
		_ = c.Abort()
		return err
	}
	_ = c.Quit()
	d.cfg.Tracer.Finish(sp, trace.MStageOutbound, start, host)
	if accepted == 0 {
		return fmt.Errorf("all %d recipients rejected by %s", len(rcpts), host)
	}
	return nil
}

// fail records one failed delivery attempt against a destination.
func (d *Deliverer) fail(domain string, err error) {
	d.failures.Inc()
	if d.cfg.Tracker != nil {
		d.cfg.Tracker.RecordFailure(domain)
	}
	d.cfg.Events.Info("outbound.fail", 0,
		eventlog.Str("dest", domain),
		eventlog.Str("err", err.Error()),
	)
}

// groupByDomain buckets recipients by destination domain, preserving
// first-seen domain order. Recipients with no domain part group under
// "" (delivered to the implicit local exchanger — simulations resolve
// it explicitly).
func groupByDomain(rcpts []string) (map[string][]string, []string) {
	groups := make(map[string][]string)
	var order []string
	for _, r := range rcpts {
		dom := smtp.Domain(r)
		if _, ok := groups[dom]; !ok {
			order = append(order, dom)
		}
		groups[dom] = append(groups[dom], r)
	}
	return groups, order
}
