package outbound

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dns"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/queue"
)

// sink is a minimal accept-everything SMTP server for outbound tests.
type sink struct {
	ln        net.Listener
	delivered atomic.Int64
	lastFrom  atomic.Value // string
	rejectAll bool
}

func startSink(t *testing.T, rejectAll bool) *sink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{ln: ln, rejectAll: rejectAll}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *sink) addr() string { return s.ln.Addr().String() }

func (s *sink) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "220 sink ready\r\n")
	inData := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		if inData {
			if line == "." {
				inData = false
				s.delivered.Add(1)
				fmt.Fprintf(conn, "250 queued\r\n")
			}
			continue
		}
		verb := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(verb, "HELO"), strings.HasPrefix(verb, "EHLO"):
			fmt.Fprintf(conn, "250 sink\r\n")
		case strings.HasPrefix(verb, "MAIL"):
			s.lastFrom.Store(line)
			fmt.Fprintf(conn, "250 ok\r\n")
		case strings.HasPrefix(verb, "RCPT"):
			if s.rejectAll {
				fmt.Fprintf(conn, "550 no such user\r\n")
			} else {
				fmt.Fprintf(conn, "250 ok\r\n")
			}
		case strings.HasPrefix(verb, "DATA"):
			inData = true
			fmt.Fprintf(conn, "354 go\r\n")
		case strings.HasPrefix(verb, "RSET"):
			fmt.Fprintf(conn, "250 ok\r\n")
		case strings.HasPrefix(verb, "QUIT"):
			fmt.Fprintf(conn, "221 bye\r\n")
			return
		default:
			fmt.Fprintf(conn, "500 what\r\n")
		}
	}
}

func TestStaticResolver(t *testing.T) {
	r := NewStatic()
	r.Set("B.Test", MX{Host: "mx1.b.test", Pref: 10}, MX{Host: "mx2.b.test", Pref: 20})
	mxs, err := r.LookupMX(context.Background(), "b.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(mxs) != 2 || mxs[0].Host != "mx1.b.test" {
		t.Fatalf("mxs = %+v", mxs)
	}
	if _, err := r.LookupMX(context.Background(), "unknown.test"); err == nil {
		t.Fatal("unknown domain must not resolve")
	}
}

func TestDNSResolverMXAndImplicitFallback(t *testing.T) {
	tr := &dns.MemTransport{Handler: dns.HandlerFunc(func(q dns.Question) *dns.Message {
		resp := dns.NewQuery(0, q.Name, q.Type).Reply()
		switch q.Name {
		case "b.test":
			resp.Answers = []dns.RR{
				dns.MXRecord("b.test", 300, 20, "mx2.b.test"),
				dns.MXRecord("b.test", 300, 10, "mx1.b.test"),
			}
		case "nomx.test":
			// NOERROR with empty answer: implicit MX applies.
		default:
			resp.RCode = dns.RCodeNXDomain
		}
		return resp
	})}
	r := NewDNSResolver(tr)
	mxs, err := r.LookupMX(context.Background(), "b.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(mxs) != 2 {
		t.Fatalf("mxs = %+v", mxs)
	}
	mxs, err = r.LookupMX(context.Background(), "nomx.test")
	if err != nil || len(mxs) != 1 || mxs[0].Host != "nomx.test" || mxs[0].Pref != 0 {
		t.Fatalf("implicit MX broken: %+v, %v", mxs, err)
	}
	if _, err := r.LookupMX(context.Background(), "gone.test"); err == nil {
		t.Fatal("NXDOMAIN must fail the lookup")
	}
}

func TestDeliverMXFailover(t *testing.T) {
	good := startSink(t, false)
	// A dead primary: listen then close immediately so the port refuses.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	res := NewStatic()
	res.Set("b.test", MX{Host: deadAddr, Pref: 10}, MX{Host: good.addr(), Pref: 20})
	reg := metrics.NewRegistry()
	tracker := policy.NewDestTracker()
	d, err := New(Config{Resolver: res, Tracker: tracker, Registry: reg,
		DialTimeout: time.Second, CommandTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	item := &queue.Item{ID: "Q1", Sender: "a@a.test", Rcpts: []string{"b@b.test"}, Data: []byte("hi")}
	if err := d.Deliver(item); err != nil {
		t.Fatalf("failover delivery failed: %v", err)
	}
	if n := good.delivered.Load(); n != 1 {
		t.Fatalf("sink deliveries = %d, want 1", n)
	}
	if v := reg.Counter("outbound_mx_failover_total").Value(); v != 1 {
		t.Fatalf("failovers = %d, want 1", v)
	}
	snap := tracker.Snapshot()
	if len(snap) != 1 || snap[0].Dest != "b.test" || snap[0].Failures != 1 || snap[0].Successes != 1 {
		t.Fatalf("tracker snapshot = %+v", snap)
	}
}

func TestDeliverPartialFailureShrinksRcpts(t *testing.T) {
	good := startSink(t, false)
	res := NewStatic()
	res.Set("ok.test", MX{Host: good.addr(), Pref: 10})
	// "down.test" has no resolver entry at all.
	d, err := New(Config{Resolver: res, DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	item := &queue.Item{
		ID:     "Q2",
		Sender: "a@a.test",
		Rcpts:  []string{"x@ok.test", "y@down.test", "z@down.test"},
		Data:   []byte("hi"),
	}
	err = d.Deliver(item)
	if err == nil {
		t.Fatal("want an error for the unresolvable domain")
	}
	if len(item.Rcpts) != 2 || item.Rcpts[0] != "y@down.test" || item.Rcpts[1] != "z@down.test" {
		t.Fatalf("Rcpts not shrunk to the failed subset: %v", item.Rcpts)
	}
	if n := good.delivered.Load(); n != 1 {
		t.Fatalf("sink deliveries = %d, want 1", n)
	}
}

func TestDeliverAllRecipientsRejected(t *testing.T) {
	rejecting := startSink(t, true)
	res := NewStatic()
	res.Set("b.test", MX{Host: rejecting.addr(), Pref: 10})
	d, err := New(Config{Resolver: res, DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	item := &queue.Item{ID: "Q3", Sender: "a@a.test", Rcpts: []string{"b@b.test"}, Data: []byte("hi")}
	if err := d.Deliver(item); err == nil {
		t.Fatal("all-rejected transaction must count as a failed delivery")
	}
	if n := rejecting.delivered.Load(); n != 0 {
		t.Fatalf("rejecting sink delivered %d", n)
	}
}

func TestNewRequiresResolver(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error")
	}
}
