package dnsbl

import (
	"sort"
	"time"

	"repro/internal/sim"
)

// LatencyCDF is an empirical lookup-latency distribution for one DNSBL,
// as piecewise-linear CDF points over milliseconds.
type LatencyCDF struct {
	// Zone is the DNSBL's zone name.
	Zone string
	// Points are (latency ms, cumulative fraction) pairs.
	Points []struct{ X, Frac float64 }
}

// FractionAbove returns the fraction of queries slower than ms.
func (l LatencyCDF) FractionAbove(ms float64) float64 {
	pts := l.Points
	if len(pts) == 0 {
		return 0
	}
	if ms <= pts[0].X {
		return 1 - pts[0].Frac
	}
	if ms >= pts[len(pts)-1].X {
		return 0
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].X >= ms })
	p0, p1 := pts[i-1], pts[i]
	if p1.X == p0.X {
		return 1 - p1.Frac
	}
	t := (ms - p0.X) / (p1.X - p0.X)
	return 1 - (p0.Frac + t*(p1.Frac-p0.Frac))
}

// Sampler returns a deterministic sampler over the distribution.
func (l LatencyCDF) Sampler() *sim.CDFSampler { return sim.NewCDFSampler(l.Points) }

func pts(pairs ...float64) []struct{ X, Frac float64 } {
	var out []struct{ X, Frac float64 }
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, struct{ X, Frac float64 }{pairs[i], pairs[i+1]})
	}
	return out
}

// Figure5 holds the latency distributions of the six DNSBLs the paper
// measured with its 19,492 sinkhole IPs (Figure 5: between 16% and 50%
// of queries took more than 100 ms). The curves are reconstructed from
// the figure; FractionAbove(100) spans that published range.
var Figure5 = []LatencyCDF{
	{Zone: "cbl.abuseat.org", Points: pts(0, 0, 10, 0.35, 30, 0.60, 60, 0.78, 100, 0.84, 150, 0.92, 250, 1)},
	{Zone: "sbl-xbl.spamhaus.org", Points: pts(0, 0, 10, 0.40, 30, 0.65, 100, 0.80, 200, 0.95, 250, 1)},
	{Zone: "bl.spamcop.net", Points: pts(0, 0, 15, 0.30, 40, 0.55, 100, 0.72, 200, 0.90, 250, 1)},
	{Zone: "list.dsbl.org", Points: pts(0, 0, 20, 0.30, 50, 0.55, 100, 0.75, 150, 0.85, 250, 1)},
	{Zone: "dnsbl.sorbs.net", Points: pts(0, 0, 25, 0.25, 60, 0.50, 100, 0.68, 180, 0.85, 250, 1)},
	{Zone: "dul.dnsbl.sorbs.net", Points: pts(0, 0, 40, 0.15, 80, 0.35, 100, 0.50, 150, 0.70, 250, 1)},
}

// DefaultLatency is the distribution the mail-server simulations use for
// cache-miss lookups (the CBL curve — the list the paper's Figure 12
// analysis uses).
var DefaultLatency = Figure5[0]

// CacheHitLatency is the local-cache response time charged on a hit.
const CacheHitLatency = 100 * time.Microsecond

// SimCache emulates DNSBL resolver caching under virtual time: the
// simulation asks it, per connection, what the lookup costs and whether
// an upstream query was sent. This mirrors the paper's own method — §7.2
// "we emulated DNS caching and consequently the DNSBL query time for each
// mail received".
type SimCache struct {
	policy  CachePolicy
	ttl     time.Duration
	sampler *sim.CDFSampler
	rng     *sim.RNG

	expiry map[string]time.Duration // cache key -> virtual expiry

	hits    int64
	misses  int64
	latency []time.Duration
}

// NewSimCache returns a virtual-time cache emulator. The sampler draws
// miss latencies in milliseconds (use a LatencyCDF.Sampler()).
func NewSimCache(policy CachePolicy, ttl time.Duration, sampler *sim.CDFSampler, rng *sim.RNG) *SimCache {
	return &SimCache{
		policy:  policy,
		ttl:     ttl,
		sampler: sampler,
		rng:     rng,
		expiry:  make(map[string]time.Duration),
	}
}

// Lookup returns the lookup latency for a connection from ipKey/prefixKey
// arriving at virtual time now, and whether an upstream DNS query was
// issued. Keys are precomputed strings so the emulator is agnostic to the
// address representation.
func (s *SimCache) Lookup(now time.Duration, ipKey, prefixKey string) (time.Duration, bool) {
	var key string
	switch s.policy {
	case CacheIP:
		key = ipKey
	case CachePrefix:
		key = prefixKey
	case CacheNone:
		key = ""
	}
	if key != "" {
		if exp, ok := s.expiry[key]; ok && exp > now {
			s.hits++
			s.latency = append(s.latency, CacheHitLatency)
			return CacheHitLatency, false
		}
	}
	s.misses++
	d := time.Duration(s.sampler.Sample(s.rng) * float64(time.Millisecond))
	s.latency = append(s.latency, d)
	if key != "" {
		s.expiry[key] = now + d + s.ttl
	}
	return d, true
}

// Hits returns the number of cache hits.
func (s *SimCache) Hits() int64 { return s.hits }

// Misses returns the number of upstream queries (cache misses).
func (s *SimCache) Misses() int64 { return s.misses }

// HitRatio returns hits/(hits+misses).
func (s *SimCache) HitRatio() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}

// MissRatio returns the fraction of lookups that went upstream — the
// "number of DNS queries issued" metric of §7.2 (26.22% under IP caching
// vs 16.11% under prefix caching on the sinkhole trace).
func (s *SimCache) MissRatio() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.misses) / float64(total)
}

// Latencies returns every lookup's latency in call order.
func (s *SimCache) Latencies() []time.Duration {
	return append([]time.Duration(nil), s.latency...)
}
