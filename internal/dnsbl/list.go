// Package dnsbl implements DNS-based blacklisting as described in §4.3
// and §7 of the paper: the classic per-IP scheme (an A query for
// w.z.y.x.<zone> answered with 127.0.0.x) and the paper's prefix-based
// DNSBLv6 (an AAAA query whose 128-bit answer is the blacklist bitmap of
// the queried /25 prefix), plus the caching lookup client the mail server
// uses and the empirical latency model behind Figure 5.
package dnsbl

import (
	"sync"

	"repro/internal/addr"
)

// ListingCode is the last octet of a classic DNSBL answer (127.0.0.x):
// it encodes the kind of spamming activity observed from the IP.
type ListingCode byte

// Listing codes used by the built-in zones (the conventional CBL/XBL
// assignments).
const (
	CodeOpenRelay ListingCode = 2
	CodeDialup    ListingCode = 3
	CodeSpamSrc   ListingCode = 4
	CodeSmartHost ListingCode = 5
	CodeZombie    ListingCode = 6
	CodeDynamic   ListingCode = 7
)

// List is one blacklist database: a set of blacklisted IPv4 addresses
// with listing codes. It is safe for concurrent use — the DNS server
// resolves from many client goroutines while sinkhole feeds add entries.
type List struct {
	mu    sync.RWMutex
	zone  string
	codes map[addr.IPv4]ListingCode

	// perPrefix24 maintains the count of listed IPs per /24, feeding
	// Figure 12 directly.
	perPrefix24 map[addr.Prefix]int
}

// NewList returns an empty blacklist serving the given zone name
// (e.g. "cbl.abuseat.org").
func NewList(zone string) *List {
	return &List{
		zone:        zone,
		codes:       make(map[addr.IPv4]ListingCode),
		perPrefix24: make(map[addr.Prefix]int),
	}
}

// Zone returns the DNS zone the list answers under.
func (l *List) Zone() string { return l.zone }

// Add blacklists ip with the given code. Re-adding updates the code.
func (l *List) Add(ip addr.IPv4, code ListingCode) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.codes[ip]; !ok {
		l.perPrefix24[ip.Prefix24()]++
	}
	l.codes[ip] = code
}

// Remove delists ip.
func (l *List) Remove(ip addr.IPv4) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.codes[ip]; ok {
		delete(l.codes, ip)
		p := ip.Prefix24()
		if l.perPrefix24[p]--; l.perPrefix24[p] <= 0 {
			delete(l.perPrefix24, p)
		}
	}
}

// Lookup reports whether ip is blacklisted and with what code.
func (l *List) Lookup(ip addr.IPv4) (ListingCode, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	c, ok := l.codes[ip]
	return c, ok
}

// Len returns the number of blacklisted IPs.
func (l *List) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.codes)
}

// Bitmap returns the 128-bit blacklist bitmap for the /25 prefix
// containing ip — the payload of a DNSBLv6 answer (§7.1). Bit i is set
// iff prefix.Nth(i) is blacklisted. The bitmap identifies each address
// individually: no innocent neighbour is punished.
func (l *List) Bitmap(p addr.Prefix) addr.Bitmap128 {
	if p.Bits != 25 {
		panic("dnsbl: bitmap requires a /25 prefix")
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	var bm addr.Bitmap128
	for i := 0; i < 128; i++ {
		if _, ok := l.codes[p.Nth(i)]; ok {
			bm.Set(i)
		}
	}
	return bm
}

// PrefixCounts returns, for every /24 prefix with at least one listed IP,
// the number of listed IPs it contains — the population Figure 12 plots
// the CDF of.
func (l *List) PrefixCounts() map[addr.Prefix]int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[addr.Prefix]int, len(l.perPrefix24))
	for p, n := range l.perPrefix24 {
		out[p] = n
	}
	return out
}
