package dnsbl

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/costmodel"
	"repro/internal/dns"
	"repro/internal/eventlog"
	"repro/internal/metrics"
)

// CachePolicy selects how the lookup client caches DNSBL answers.
type CachePolicy int

// The three policies the evaluation compares (Figures 14 and 15).
const (
	// CacheNone issues a fresh per-IP query every time.
	CacheNone CachePolicy = iota + 1
	// CacheIP caches classic per-IP answers (the pre-paper baseline).
	CacheIP
	// CachePrefix queries DNSBLv6 and caches the /25 bitmap, resolving
	// subsequent lookups for any of the 128 neighbouring IPs locally —
	// the paper's contribution (§7.1).
	CachePrefix
)

// String names the policy for reports.
func (p CachePolicy) String() string {
	switch p {
	case CacheNone:
		return "none"
	case CacheIP:
		return "ip"
	case CachePrefix:
		return "prefix"
	default:
		return fmt.Sprintf("CachePolicy(%d)", int(p))
	}
}

// Result is the outcome of one blacklist lookup.
type Result struct {
	// Listed reports whether the IP is blacklisted.
	Listed bool
	// Code is the listing code when Listed (classic lookups only; bitmap
	// answers carry no per-IP code).
	Code ListingCode
	// CacheHit reports whether the answer came from the local cache.
	CacheHit bool
	// Stale reports that the answer came from an expired cache entry
	// served because the live blacklist was unreachable (WithStale).
	Stale bool
}

// Resolver is the unified lookup surface every consumer programs
// against: the policy scorer, both server architectures, the simulator,
// and the experiments. Implementations must be safe for concurrent use
// and must honour ctx cancellation and deadlines.
type Resolver interface {
	Lookup(ctx context.Context, ip addr.IPv4) (Result, error)
}

// Client performs blacklist lookups against one DNSBL zone through a
// dns.Transport, caching according to policy. Concurrent identical
// lookups are collapsed into one upstream query (singleflight), upstream
// failures are negatively cached so a dead blacklist is probed at most
// once per NegativeTTL, and — when enabled — expired cache entries are
// served stale rather than stalling the accept path. It is safe for
// concurrent use.
type Client struct {
	transport dns.Transport
	buildErr  error // deferred construction failure, reported per Lookup
	zone      string
	policy    CachePolicy
	cache     *dns.Cache
	now       func() time.Time
	ttl       time.Duration
	timeout   time.Duration
	staleFor  time.Duration
	negTTL    time.Duration

	// Construction scratch consumed by New; see WithUpstreams/WithHedge.
	upstreams []string
	hedge     time.Duration

	mu     sync.Mutex
	nextID uint16

	events *eventlog.Log

	// Counters are registry-vended, labelled by zone, so a shared
	// registry exposes every client's series side by side.
	reg       *metrics.Registry
	queries   *metrics.Counter
	lookups   *metrics.Counter
	cacheHits *metrics.Counter
	stale     *metrics.Counter
	negHits   *metrics.Counter
	collapsed *metrics.Counter

	sfMu  sync.Mutex
	calls map[string]*call

	negMu    sync.Mutex
	negUntil map[string]time.Time
}

// call is one in-flight upstream query shared by concurrent lookups.
type call struct {
	done chan struct{}
	msg  *dns.Message
	err  error
}

// Option configures a Client.
type Option func(*Client)

// WithTransport sets the dns.Transport queries go through. Mutually
// exclusive with WithUpstreams.
func WithTransport(t dns.Transport) Option {
	return func(c *Client) { c.transport = t }
}

// WithUpstreams builds a dns.Pipelined transport over the given replica
// server addresses (hedged across them when WithHedge is also given).
// Mutually exclusive with WithTransport.
func WithUpstreams(addrs ...string) Option {
	return func(c *Client) { c.upstreams = append([]string(nil), addrs...) }
}

// WithHedge sets the hedge delay for the transport built by
// WithUpstreams: a duplicate query is sent to the next replica when the
// first upstream has not answered within d. Ignored when WithTransport
// supplies the transport directly.
func WithHedge(d time.Duration) Option {
	return func(c *Client) { c.hedge = d }
}

// WithPolicy selects the cache policy (default CachePrefix, the paper's
// scheme).
func WithPolicy(p CachePolicy) Option {
	return func(c *Client) { c.policy = p }
}

// WithTTL overrides the cache TTL (default costmodel.DNSBLCacheTTL, the
// paper's 24 h).
func WithTTL(ttl time.Duration) Option {
	return func(c *Client) { c.ttl = ttl }
}

// WithClock injects the client's time source, letting simulations drive
// cache expiry with virtual time.
func WithClock(now func() time.Time) Option {
	return func(c *Client) { c.now = now }
}

// WithTimeout bounds each Lookup when the caller's context carries no
// deadline (default costmodel.DNSBLTimeout).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithStale serves expired cache entries up to maxAge past expiry when
// the upstream query fails, so cached /25 bitmaps outlive an unreachable
// blacklist instead of turning into accept-path stalls. Zero disables
// (the default).
func WithStale(maxAge time.Duration) Option {
	return func(c *Client) { c.staleFor = maxAge }
}

// WithNegativeTTL caches upstream *failures* for d: after a timeout the
// blacklist is not probed again until d elapses, and lookups in that
// window fail (or serve stale) immediately. Zero disables (the default).
func WithNegativeTTL(d time.Duration) Option {
	return func(c *Client) { c.negTTL = d }
}

// WithRegistry directs the client's metrics (lookup/query/cache-hit/
// stale/negative/collapsed counters and the hedge gauge, labelled by
// zone) into r. The default is a private registry.
func WithRegistry(r *metrics.Registry) Option {
	return func(c *Client) { c.reg = r }
}

// WithEventLog emits structured events into log: a dnsbl.lookup debug
// event per lookup (source IP, cache hit, stale, listed — the stream
// internal/telemetry derives /25 locality from; sample it under load)
// and dnsbl.stale / dnsbl.down warnings when the resilience machinery
// engages. Nil disables emission (the default).
func WithEventLog(log *eventlog.Log) Option {
	return func(c *Client) { c.events = log }
}

// New returns a lookup client for the given zone, configured by
// functional options. With no transport option the client reports an
// error on every Lookup.
func New(zone string, opts ...Option) *Client {
	c := &Client{
		zone:     zone,
		policy:   CachePrefix,
		ttl:      costmodel.DNSBLCacheTTL,
		timeout:  costmodel.DNSBLTimeout,
		calls:    make(map[string]*call),
		negUntil: make(map[string]time.Time),
	}
	for _, o := range opts {
		o(c)
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.reg == nil {
		c.reg = metrics.NewRegistry()
	}
	c.queries = c.reg.Counter("dnsbl_queries_total", "zone", zone)
	c.lookups = c.reg.Counter("dnsbl_lookups_total", "zone", zone)
	c.cacheHits = c.reg.Counter("dnsbl_cache_hits_total", "zone", zone)
	c.stale = c.reg.Counter("dnsbl_stale_served_total", "zone", zone)
	c.negHits = c.reg.Counter("dnsbl_negative_hits_total", "zone", zone)
	c.collapsed = c.reg.Counter("dnsbl_collapsed_total", "zone", zone)
	c.cache = dns.NewCache(c.now)
	switch {
	case c.transport != nil && c.upstreams != nil:
		c.buildErr = fmt.Errorf("dnsbl: WithTransport and WithUpstreams are mutually exclusive")
	case c.transport == nil && c.upstreams != nil:
		var popts []dns.PipelinedOption
		if c.hedge > 0 {
			popts = append(popts, dns.WithHedgeDelay(c.hedge))
		}
		if c.timeout > 0 {
			popts = append(popts, dns.WithQueryTimeout(c.timeout))
		}
		c.transport, c.buildErr = dns.NewPipelined(c.upstreams, popts...)
	case c.transport == nil:
		c.buildErr = fmt.Errorf("dnsbl: no transport configured (use WithTransport or WithUpstreams)")
	}
	if p, ok := c.transport.(*dns.Pipelined); ok {
		// Hedges live inside the transport; expose them through the same
		// registry so /metrics shows the resilience machinery at work.
		c.reg.GaugeFunc("dnsbl_hedges", func() float64 { return float64(p.Hedges()) }, "zone", zone)
	}
	return c
}

// Registry returns the registry holding the client's metrics.
func (c *Client) Registry() *metrics.Registry { return c.reg }

// Close releases the transport when the client built it (WithUpstreams);
// it never closes a transport supplied by the caller.
func (c *Client) Close() error {
	if c.upstreams != nil {
		if p, ok := c.transport.(*dns.Pipelined); ok {
			return p.Close()
		}
	}
	return nil
}

// Queries returns the number of DNS queries actually sent upstream — the
// quantity the paper's prefix scheme reduces by ≈39% (§7.2) and
// singleflight reduces further under concurrency.
func (c *Client) Queries() int64 { return c.queries.Value() }

// Lookups returns the number of Lookup calls served.
func (c *Client) Lookups() int64 { return c.lookups.Value() }

// CacheHits returns how many lookups were answered from a fresh cache
// entry.
func (c *Client) CacheHits() int64 { return c.cacheHits.Value() }

// StaleServed returns how many lookups were answered from expired cache
// entries because the upstream was unreachable.
func (c *Client) StaleServed() int64 { return c.stale.Value() }

// NegativeHits returns how many lookups were short-circuited by the
// negative (failure) cache.
func (c *Client) NegativeHits() int64 { return c.negHits.Value() }

// Collapsed returns how many concurrent duplicate lookups were merged
// into another lookup's in-flight upstream query.
func (c *Client) Collapsed() int64 { return c.collapsed.Value() }

// HitRatio returns the cache hit ratio over all lookups (0 under
// CacheNone).
func (c *Client) HitRatio() float64 {
	lookups, queries := c.lookups.Value(), c.queries.Value()
	if lookups == 0 {
		return 0
	}
	return float64(lookups-queries) / float64(lookups)
}

// Lookup implements Resolver: it checks ip against the blacklist,
// bounded by ctx (or the client's default timeout when ctx carries no
// deadline).
func (c *Client) Lookup(ctx context.Context, ip addr.IPv4) (Result, error) {
	if c.buildErr != nil {
		return Result{}, c.buildErr
	}
	c.lookups.Inc()
	if _, ok := ctx.Deadline(); !ok && c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var r Result
	var err error
	switch c.policy {
	case CacheNone:
		r, err = c.lookupV4(ctx, ip, false)
	case CacheIP:
		r, err = c.lookupV4(ctx, ip, true)
	case CachePrefix:
		r, err = c.lookupPrefix(ctx, ip)
	default:
		return Result{}, fmt.Errorf("dnsbl: unknown cache policy %d", c.policy)
	}
	if err != nil {
		c.events.Warn("dnsbl.down", 0,
			eventlog.IP("ip", ip),
			eventlog.Str("zone", c.zone),
			eventlog.Str("err", err.Error()),
		)
		return r, err
	}
	c.events.Debug("dnsbl.lookup", 0,
		eventlog.IP("ip", ip),
		eventlog.Str("zone", c.zone),
		eventlog.Bool("hit", r.CacheHit),
		eventlog.Bool("stale", r.Stale),
		eventlog.Bool("listed", r.Listed),
	)
	if r.Stale {
		// Lookup answered, but only because serve-stale papered over an
		// unreachable upstream — worth a warning even when debug is off.
		c.events.Warn("dnsbl.stale", 0, eventlog.IP("ip", ip), eventlog.Str("zone", c.zone))
	}
	return r, nil
}

func (c *Client) lookupV4(ctx context.Context, ip addr.IPv4, useCache bool) (Result, error) {
	name := ip.ReversedName(c.zone)
	msg, hit, stale, err := c.fetch(ctx, name, dns.TypeA, useCache)
	if err != nil {
		return Result{}, err
	}
	r := resultFromV4(msg, hit)
	r.Stale = stale
	return r, nil
}

func resultFromV4(msg *dns.Message, hit bool) Result {
	for _, rr := range msg.Answers {
		if rr.Type == dns.TypeA && len(rr.RData) == 4 && rr.RData[0] == 127 {
			return Result{Listed: true, Code: ListingCode(rr.RData[3]), CacheHit: hit}
		}
	}
	return Result{CacheHit: hit}
}

func (c *Client) lookupPrefix(ctx context.Context, ip addr.IPv4) (Result, error) {
	name := ip.V6Name(c.zone)
	msg, hit, stale, err := c.fetch(ctx, name, dns.TypeAAAA, true)
	if err != nil {
		return Result{}, err
	}
	r, err := resultFromBitmap(msg, ip, hit)
	r.Stale = stale
	return r, err
}

func resultFromBitmap(msg *dns.Message, ip addr.IPv4, hit bool) (Result, error) {
	for _, rr := range msg.Answers {
		if rr.Type == dns.TypeAAAA && len(rr.RData) == 16 {
			var bm addr.Bitmap128
			copy(bm[:], rr.RData)
			return Result{Listed: bm.Get(ip.IndexIn25()), CacheHit: hit}, nil
		}
	}
	if msg.RCode != dns.RCodeNoError {
		return Result{}, fmt.Errorf("dnsbl: v6 lookup failed with rcode %d", msg.RCode)
	}
	return Result{CacheHit: hit}, nil
}

// fetch resolves (name, qtype) through cache, negative cache,
// singleflight, upstream, and the serve-stale fallback, in that order.
func (c *Client) fetch(ctx context.Context, name string, qtype dns.Type, useCache bool) (msg *dns.Message, hit, stale bool, err error) {
	if useCache {
		if msg, ok := c.cache.Get(name, qtype); ok {
			c.cacheHits.Inc()
			return msg, true, false, nil
		}
	}
	if until, down := c.negCached(name, qtype); down {
		c.negHits.Inc()
		if msg, ok := c.staleFallback(name, qtype, useCache); ok {
			return msg, true, true, nil
		}
		return nil, false, false, fmt.Errorf("dnsbl: %s upstream marked down until %s: %w",
			c.zone, until.Format(time.RFC3339), dns.ErrTimeout)
	}
	msg, err = c.querySingleflight(ctx, name, qtype)
	if err != nil {
		c.noteFailure(name, qtype)
		if msg, ok := c.staleFallback(name, qtype, useCache); ok {
			return msg, true, true, nil
		}
		return nil, false, false, err
	}
	if useCache {
		c.cache.Put(name, qtype, msg, c.ttl)
	}
	return msg, false, false, nil
}

// staleFallback serves an expired entry within the stale window.
func (c *Client) staleFallback(name string, qtype dns.Type, useCache bool) (*dns.Message, bool) {
	if !useCache || c.staleFor <= 0 {
		return nil, false
	}
	msg, age, ok := c.cache.Stale(name, qtype)
	if !ok || age > c.staleFor {
		return nil, false
	}
	c.stale.Inc()
	return msg, true
}

// negCached reports whether the upstream is negatively cached as down
// for this key.
func (c *Client) negCached(name string, qtype dns.Type) (time.Time, bool) {
	if c.negTTL <= 0 {
		return time.Time{}, false
	}
	key := negKey(name, qtype)
	c.negMu.Lock()
	defer c.negMu.Unlock()
	until, ok := c.negUntil[key]
	if !ok {
		return time.Time{}, false
	}
	if c.now().After(until) {
		delete(c.negUntil, key)
		return time.Time{}, false
	}
	return until, true
}

// noteFailure records an upstream failure in the negative cache.
func (c *Client) noteFailure(name string, qtype dns.Type) {
	if c.negTTL <= 0 {
		return
	}
	c.negMu.Lock()
	c.negUntil[negKey(name, qtype)] = c.now().Add(c.negTTL)
	c.negMu.Unlock()
}

func negKey(name string, qtype dns.Type) string {
	return fmt.Sprintf("%s/%d", name, qtype)
}

// querySingleflight collapses concurrent identical queries: the first
// caller goes upstream, the rest wait on its result (or their own ctx).
func (c *Client) querySingleflight(ctx context.Context, name string, qtype dns.Type) (*dns.Message, error) {
	key := negKey(name, qtype)
	c.sfMu.Lock()
	if existing, ok := c.calls[key]; ok {
		c.collapsed.Inc()
		c.sfMu.Unlock()
		select {
		case <-existing.done:
			return existing.msg, existing.err
		case <-ctx.Done():
			return nil, dns.ErrTimeout
		}
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.sfMu.Unlock()

	cl.msg, cl.err = c.query(ctx, name, qtype)
	c.sfMu.Lock()
	delete(c.calls, key)
	c.sfMu.Unlock()
	close(cl.done)
	return cl.msg, cl.err
}

func (c *Client) query(ctx context.Context, name string, qtype dns.Type) (*dns.Message, error) {
	c.queries.Inc()
	c.mu.Lock()
	c.nextID++ // the Pipelined transport re-assigns per-attempt IDs anyway
	id := c.nextID
	c.mu.Unlock()
	resp, err := c.transport.Query(ctx, dns.NewQuery(id, name, qtype))
	if err != nil {
		return nil, fmt.Errorf("dnsbl: query %s: %w", name, err)
	}
	return resp, nil
}
