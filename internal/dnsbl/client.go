package dnsbl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/costmodel"
	"repro/internal/dns"
)

// CachePolicy selects how the lookup client caches DNSBL answers.
type CachePolicy int

// The three policies the evaluation compares (Figures 14 and 15).
const (
	// CacheNone issues a fresh per-IP query every time.
	CacheNone CachePolicy = iota + 1
	// CacheIP caches classic per-IP answers (the pre-paper baseline).
	CacheIP
	// CachePrefix queries DNSBLv6 and caches the /25 bitmap, resolving
	// subsequent lookups for any of the 128 neighbouring IPs locally —
	// the paper's contribution (§7.1).
	CachePrefix
)

// String names the policy for reports.
func (p CachePolicy) String() string {
	switch p {
	case CacheNone:
		return "none"
	case CacheIP:
		return "ip"
	case CachePrefix:
		return "prefix"
	default:
		return fmt.Sprintf("CachePolicy(%d)", int(p))
	}
}

// Result is the outcome of one blacklist lookup.
type Result struct {
	// Listed reports whether the IP is blacklisted.
	Listed bool
	// Code is the listing code when Listed (classic lookups only; bitmap
	// answers carry no per-IP code).
	Code ListingCode
	// CacheHit reports whether the answer came from the local cache.
	CacheHit bool
}

// Client performs blacklist lookups against one DNSBL zone through a
// dns.Transport, caching according to policy. It is safe for concurrent
// use.
type Client struct {
	transport dns.Transport
	zone      string
	policy    CachePolicy
	cache     *dns.Cache
	ttl       time.Duration

	mu      sync.Mutex
	nextID  uint16
	queries int64
	lookups int64
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTTL overrides the cache TTL (default costmodel.DNSBLCacheTTL, the
// paper's 24 h).
func WithTTL(ttl time.Duration) ClientOption {
	return func(c *Client) { c.ttl = ttl }
}

// WithClock injects the cache's time source, letting simulations drive
// expiry with virtual time.
func WithClock(now func() time.Time) ClientOption {
	return func(c *Client) { c.cache = dns.NewCache(now) }
}

// NewClient returns a lookup client for the given zone and policy.
func NewClient(transport dns.Transport, zone string, policy CachePolicy, opts ...ClientOption) *Client {
	c := &Client{
		transport: transport,
		zone:      zone,
		policy:    policy,
		cache:     dns.NewCache(nil),
		ttl:       costmodel.DNSBLCacheTTL,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Queries returns the number of DNS queries actually sent upstream — the
// quantity the paper's prefix scheme reduces by ≈39% (§7.2).
func (c *Client) Queries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queries
}

// Lookups returns the number of Lookup calls served.
func (c *Client) Lookups() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookups
}

// HitRatio returns the cache hit ratio over all lookups (0 under
// CacheNone).
func (c *Client) HitRatio() float64 {
	c.mu.Lock()
	lookups, queries := c.lookups, c.queries
	c.mu.Unlock()
	if lookups == 0 {
		return 0
	}
	return float64(lookups-queries) / float64(lookups)
}

func (c *Client) id() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

// Lookup checks ip against the blacklist.
func (c *Client) Lookup(ip addr.IPv4) (Result, error) {
	c.mu.Lock()
	c.lookups++
	c.mu.Unlock()
	switch c.policy {
	case CacheNone:
		return c.lookupV4(ip, false)
	case CacheIP:
		return c.lookupV4(ip, true)
	case CachePrefix:
		return c.lookupPrefix(ip)
	default:
		return Result{}, fmt.Errorf("dnsbl: unknown cache policy %d", c.policy)
	}
}

func (c *Client) lookupV4(ip addr.IPv4, useCache bool) (Result, error) {
	name := ip.ReversedName(c.zone)
	if useCache {
		if msg, ok := c.cache.Get(name, dns.TypeA); ok {
			return resultFromV4(msg, true), nil
		}
	}
	resp, err := c.query(name, dns.TypeA)
	if err != nil {
		return Result{}, err
	}
	if useCache {
		c.cache.Put(name, dns.TypeA, resp, c.ttl)
	}
	return resultFromV4(resp, false), nil
}

func resultFromV4(msg *dns.Message, hit bool) Result {
	for _, rr := range msg.Answers {
		if rr.Type == dns.TypeA && len(rr.RData) == 4 && rr.RData[0] == 127 {
			return Result{Listed: true, Code: ListingCode(rr.RData[3]), CacheHit: hit}
		}
	}
	return Result{CacheHit: hit}
}

func (c *Client) lookupPrefix(ip addr.IPv4) (Result, error) {
	name := ip.V6Name(c.zone)
	if msg, ok := c.cache.Get(name, dns.TypeAAAA); ok {
		return resultFromBitmap(msg, ip, true)
	}
	resp, err := c.query(name, dns.TypeAAAA)
	if err != nil {
		return Result{}, err
	}
	c.cache.Put(name, dns.TypeAAAA, resp, c.ttl)
	return resultFromBitmap(resp, ip, false)
}

func resultFromBitmap(msg *dns.Message, ip addr.IPv4, hit bool) (Result, error) {
	for _, rr := range msg.Answers {
		if rr.Type == dns.TypeAAAA && len(rr.RData) == 16 {
			var bm addr.Bitmap128
			copy(bm[:], rr.RData)
			return Result{Listed: bm.Get(ip.IndexIn25()), CacheHit: hit}, nil
		}
	}
	if msg.RCode != dns.RCodeNoError {
		return Result{}, fmt.Errorf("dnsbl: v6 lookup failed with rcode %d", msg.RCode)
	}
	return Result{CacheHit: hit}, nil
}

func (c *Client) query(name string, qtype dns.Type) (*dns.Message, error) {
	c.mu.Lock()
	c.queries++
	c.mu.Unlock()
	resp, err := c.transport.Query(dns.NewQuery(c.id(), name, qtype))
	if err != nil {
		return nil, fmt.Errorf("dnsbl: query %s: %w", name, err)
	}
	return resp, nil
}
