package dnsbl

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/dns"
)

func netListenUDP() (net.PacketConn, error) {
	return net.ListenPacket("udp", "127.0.0.1:0")
}

// flakyTransport wraps a Transport with a switchable failure mode and a
// query counter, for driving the serve-stale and negative-cache paths.
type flakyTransport struct {
	inner dns.Transport

	mu      sync.Mutex
	fail    bool
	queries int
}

func (f *flakyTransport) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *flakyTransport) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queries
}

func (f *flakyTransport) Query(ctx context.Context, m *dns.Message) (*dns.Message, error) {
	f.mu.Lock()
	f.queries++
	fail := f.fail
	f.mu.Unlock()
	if fail {
		return nil, dns.ErrTimeout
	}
	return f.inner.Query(ctx, m)
}

// TestSingleflightCollapsesConcurrentLookups is the acceptance
// criterion's -race test: N concurrent identical lookups must share ONE
// upstream query, with the rest collapsed onto it.
func TestSingleflightCollapsesConcurrentLookups(t *testing.T) {
	l := NewList("bl6.test")
	ip := addr.MustParseIPv4("1.2.3.4")
	l.Add(ip, CodeSpamSrc)
	tr := &dns.MemTransport{
		Handler: &V6Handler{List: l},
		// Hold the upstream answer long enough for every goroutine to
		// pile onto the in-flight call.
		Latency: func(dns.Question) time.Duration { return 50 * time.Millisecond },
	}
	c := New("bl6.test", WithTransport(tr))

	const n = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			r, err := c.Lookup(ctx, ip)
			if err != nil {
				errs <- err
				return
			}
			if !r.Listed {
				errs <- errNotListed
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Queries(); got != 1 {
		t.Fatalf("upstream queries = %d, want 1 (singleflight)", got)
	}
	if c.Collapsed() == 0 {
		t.Fatal("no lookups collapsed")
	}
	if c.Collapsed()+1 > n {
		t.Fatalf("collapsed = %d out of %d lookups", c.Collapsed(), n)
	}
}

var errNotListed = &lookupErr{"listed IP reported clean"}

type lookupErr struct{ s string }

func (e *lookupErr) Error() string { return e.s }

// TestServeStaleOnUpstreamFailure: an expired bitmap is served — flagged
// Stale — when the blacklist stops answering, and ages out of the stale
// window eventually.
func TestServeStaleOnUpstreamFailure(t *testing.T) {
	l := NewList("bl6.test")
	ip := addr.MustParseIPv4("9.8.7.6")
	l.Add(ip, CodeSpamSrc)
	ft := &flakyTransport{inner: &dns.MemTransport{Handler: &V6Handler{List: l}}}
	now := time.Unix(1000, 0)
	c := New("bl6.test",
		WithTransport(ft),
		WithTTL(time.Minute),
		WithStale(time.Hour),
		WithClock(func() time.Time { return now }))

	// Prime the cache while the upstream is healthy.
	r, err := c.Lookup(ctx, ip)
	if err != nil || !r.Listed || r.Stale {
		t.Fatalf("prime = %+v, %v", r, err)
	}

	// TTL expires and the upstream dies: the lookup must still answer,
	// from the expired entry, marked stale.
	now = now.Add(2 * time.Minute)
	ft.setFail(true)
	r, err = c.Lookup(ctx, ip)
	if err != nil {
		t.Fatalf("stale lookup failed: %v", err)
	}
	if !r.Listed || !r.Stale || !r.CacheHit {
		t.Fatalf("stale result = %+v", r)
	}
	if c.StaleServed() != 1 {
		t.Fatalf("StaleServed = %d", c.StaleServed())
	}

	// Past the stale window the failure surfaces.
	now = now.Add(2 * time.Hour)
	if _, err := c.Lookup(ctx, ip); err == nil {
		t.Fatal("lookup beyond the stale window succeeded")
	}
}

// TestNegativeCacheLimitsProbes: after one failure the upstream is not
// probed again until the negative TTL passes.
func TestNegativeCacheLimitsProbes(t *testing.T) {
	ft := &flakyTransport{inner: &dns.MemTransport{Handler: &V6Handler{List: NewList("bl6.test")}}}
	ft.setFail(true)
	now := time.Unix(0, 0)
	c := New("bl6.test",
		WithTransport(ft),
		WithNegativeTTL(30*time.Second),
		WithClock(func() time.Time { return now }))
	ip := addr.MustParseIPv4("5.5.5.5")

	if _, err := c.Lookup(ctx, ip); err == nil {
		t.Fatal("dead upstream lookup succeeded")
	}
	if ft.count() != 1 {
		t.Fatalf("probes = %d, want 1", ft.count())
	}
	// Within the negative TTL: fail fast, no new probe.
	if _, err := c.Lookup(ctx, ip); err == nil {
		t.Fatal("negatively cached lookup succeeded")
	}
	if ft.count() != 1 {
		t.Fatalf("probes = %d after negative hit, want 1", ft.count())
	}
	if c.NegativeHits() != 1 {
		t.Fatalf("NegativeHits = %d", c.NegativeHits())
	}
	// After the TTL the upstream is probed again — and has recovered.
	now = now.Add(time.Minute)
	ft.setFail(false)
	r, err := c.Lookup(ctx, ip)
	if err != nil || r.Listed {
		t.Fatalf("recovered lookup = %+v, %v", r, err)
	}
	if ft.count() != 2 {
		t.Fatalf("probes = %d after recovery, want 2", ft.count())
	}
}

// TestNegativeCacheServesStale: inside the negative window a usable
// expired entry beats an error.
func TestNegativeCacheServesStale(t *testing.T) {
	l := NewList("bl6.test")
	ip := addr.MustParseIPv4("4.4.4.4")
	l.Add(ip, CodeSpamSrc)
	ft := &flakyTransport{inner: &dns.MemTransport{Handler: &V6Handler{List: l}}}
	now := time.Unix(0, 0)
	c := New("bl6.test",
		WithTransport(ft),
		WithTTL(time.Minute),
		WithStale(time.Hour),
		WithNegativeTTL(30*time.Second),
		WithClock(func() time.Time { return now }))

	if _, err := c.Lookup(ctx, ip); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute) // expire the entry
	ft.setFail(true)
	if _, err := c.Lookup(ctx, ip); err != nil { // fails upstream, serves stale, notes failure
		t.Fatal(err)
	}
	r, err := c.Lookup(ctx, ip) // negative-cached now; still stale-served
	if err != nil || !r.Stale || !r.Listed {
		t.Fatalf("negative+stale = %+v, %v", r, err)
	}
	if ft.count() != 2 {
		t.Fatalf("probes = %d, want 2 (negative cache suppressed the third)", ft.count())
	}
}

// TestClientConstructionErrors: misconfigured clients fail per-Lookup
// with a diagnostic, not a panic.
func TestClientConstructionErrors(t *testing.T) {
	if _, err := New("bl.test").Lookup(ctx, addr.MustParseIPv4("1.1.1.1")); err == nil {
		t.Fatal("transportless client looked something up")
	}
	both := New("bl.test",
		WithTransport(&dns.MemTransport{Handler: &V6Handler{List: NewList("bl.test")}}),
		WithUpstreams("127.0.0.1:1"))
	if _, err := both.Lookup(ctx, addr.MustParseIPv4("1.1.1.1")); err == nil {
		t.Fatal("transport+upstreams client looked something up")
	}
}

// TestClassicV4LookupPath pins the classic per-IP DNSBL shape: the V4
// reversed-octet handler with the per-IP cache policy, no prefix
// bitmaps involved.
func TestClassicV4LookupPath(t *testing.T) {
	l := NewList("bl.test")
	ip := addr.MustParseIPv4("2.2.2.2")
	l.Add(ip, CodeZombie)
	c := New("bl.test", WithTransport(&dns.MemTransport{Handler: &V4Handler{List: l}}), WithPolicy(CacheIP))
	r, err := c.Lookup(ctx, ip)
	if err != nil || !r.Listed || r.Code != CodeZombie {
		t.Fatalf("legacy client = %+v, %v", r, err)
	}
}

// TestClientEndToEndOverPipelined exercises the full production stack —
// client, singleflight, prefix cache, pipelined transport, real UDP
// server behind injected loss — and expects every verdict to match the
// ground-truth list.
func TestClientEndToEndOverPipelined(t *testing.T) {
	l := NewList("bl6.test")
	listed := addr.MustParseIPv4("10.1.1.40")
	l.Add(listed, CodeSpamSrc)
	srv, faultStats := startFaultyV6Server(t, l, dns.FaultConfig{Loss: 0.2, Seed: 42})

	c := New("bl6.test",
		WithUpstreams(srv.Addr().String()),
		WithTimeout(5*time.Second))
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				ip := addr.MakeIPv4(10, 1, byte(i), byte(g*16))
				r, err := c.Lookup(ctx, ip)
				if err != nil {
					errs <- err
					return
				}
				if r.Listed != (ip == listed) {
					errs <- &lookupErr{"verdict mismatch under loss"}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if faultStats().Dropped == 0 {
		t.Fatal("fault injection never fired; the test is vacuous")
	}
}

// startFaultyV6Server boots a DNSBLv6 UDP server with fault injection on
// its responses.
func startFaultyV6Server(t *testing.T, l *List, cfg dns.FaultConfig) (*dns.Server, func() dns.FaultStats) {
	t.Helper()
	pc, err := netListenUDP()
	if err != nil {
		t.Fatal(err)
	}
	fc := dns.NewFaultConn(pc, cfg)
	srv := dns.NewServer(fc, &V6Handler{List: l})
	t.Cleanup(func() { srv.Close() })
	return srv, fc.Stats
}
