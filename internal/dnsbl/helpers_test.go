package dnsbl

import "repro/internal/sim"

// newRNG returns a fixed-seed random stream for tests.
func newRNG() *sim.RNG { return sim.NewRNG(12345) }
