package dnsbl

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/addr"
	"repro/internal/dns"
)

// ctx is the do-not-care context most lookups in this file use.
var ctx = context.Background()

func TestListAddLookupRemove(t *testing.T) {
	l := NewList("bl.test")
	ip := addr.MustParseIPv4("192.0.2.7")
	if _, ok := l.Lookup(ip); ok {
		t.Fatal("empty list matched")
	}
	l.Add(ip, CodeSpamSrc)
	code, ok := l.Lookup(ip)
	if !ok || code != CodeSpamSrc {
		t.Fatalf("lookup = %v, %v", code, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
	// Re-adding updates the code without double counting.
	l.Add(ip, CodeZombie)
	if l.Len() != 1 {
		t.Fatal("re-add changed length")
	}
	if code, _ := l.Lookup(ip); code != CodeZombie {
		t.Fatal("re-add did not update code")
	}
	l.Remove(ip)
	if _, ok := l.Lookup(ip); ok || l.Len() != 0 {
		t.Fatal("remove failed")
	}
	l.Remove(ip) // idempotent
}

func TestListPrefixCounts(t *testing.T) {
	l := NewList("bl.test")
	for i := 0; i < 5; i++ {
		l.Add(addr.MakeIPv4(10, 0, 0, byte(i)), CodeSpamSrc)
	}
	l.Add(addr.MakeIPv4(10, 0, 1, 9), CodeSpamSrc)
	counts := l.PrefixCounts()
	if len(counts) != 2 {
		t.Fatalf("prefixes = %d, want 2", len(counts))
	}
	if counts[addr.MakeIPv4(10, 0, 0, 0).Prefix24()] != 5 {
		t.Fatalf("counts = %v", counts)
	}
	l.Remove(addr.MakeIPv4(10, 0, 1, 9))
	if len(l.PrefixCounts()) != 1 {
		t.Fatal("empty prefix not pruned")
	}
}

func TestListBitmap(t *testing.T) {
	l := NewList("bl.test")
	l.Add(addr.MustParseIPv4("10.0.0.0"), CodeSpamSrc)
	l.Add(addr.MustParseIPv4("10.0.0.127"), CodeSpamSrc)
	l.Add(addr.MustParseIPv4("10.0.0.128"), CodeSpamSrc) // other /25
	bm := l.Bitmap(addr.MustParseIPv4("10.0.0.5").Prefix25())
	if !bm.Get(0) || !bm.Get(127) || bm.Count() != 2 {
		t.Fatalf("bitmap = %s", bm)
	}
	bm2 := l.Bitmap(addr.MustParseIPv4("10.0.0.200").Prefix25())
	if !bm2.Get(0) || bm2.Count() != 1 {
		t.Fatalf("upper-half bitmap = %s", bm2)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-/25 prefix accepted")
		}
	}()
	l.Bitmap(addr.MustParseIPv4("10.0.0.0").Prefix24())
}

func TestV4Handler(t *testing.T) {
	l := NewList("bl.test")
	ip := addr.MustParseIPv4("192.0.2.1")
	l.Add(ip, CodeSpamSrc)
	h := &V4Handler{List: l}

	// Listed IP: A answer 127.0.0.4 plus TXT.
	resp := h.Resolve(dns.Question{Name: ip.ReversedName("bl.test"), Type: dns.TypeA, Class: dns.ClassIN})
	if resp.RCode != dns.RCodeNoError || len(resp.Answers) != 2 {
		t.Fatalf("listed resolve = %+v", resp)
	}
	a := resp.Answers[0]
	if a.Type != dns.TypeA || a.RData[0] != 127 || a.RData[3] != byte(CodeSpamSrc) {
		t.Fatalf("A answer = %+v", a)
	}
	// Unlisted IP: NXDOMAIN.
	other := addr.MustParseIPv4("192.0.2.2")
	resp = h.Resolve(dns.Question{Name: other.ReversedName("bl.test"), Type: dns.TypeA})
	if resp.RCode != dns.RCodeNXDomain || len(resp.Answers) != 0 {
		t.Fatalf("unlisted resolve = %+v", resp)
	}
	// Wrong zone: NXDOMAIN.
	resp = h.Resolve(dns.Question{Name: "1.2.0.192.other.zone", Type: dns.TypeA})
	if resp.RCode != dns.RCodeNXDomain {
		t.Fatalf("foreign zone rcode = %d", resp.RCode)
	}
	// Unsupported type: NOTIMP.
	resp = h.Resolve(dns.Question{Name: ip.ReversedName("bl.test"), Type: dns.TypeAAAA})
	if resp.RCode != dns.RCodeNotImp {
		t.Fatalf("AAAA on v4 handler rcode = %d", resp.RCode)
	}
	// TXT-only query for a listed IP.
	resp = h.Resolve(dns.Question{Name: ip.ReversedName("bl.test"), Type: dns.TypeTXT})
	if len(resp.Answers) != 1 || resp.Answers[0].Type != dns.TypeTXT {
		t.Fatalf("TXT resolve = %+v", resp)
	}
}

func TestV6Handler(t *testing.T) {
	l := NewList("bl6.test")
	l.Add(addr.MustParseIPv4("192.0.2.5"), CodeSpamSrc)
	l.Add(addr.MustParseIPv4("192.0.2.130"), CodeSpamSrc)
	h := &V6Handler{List: l}

	q := dns.Question{Name: addr.MustParseIPv4("192.0.2.9").V6Name("bl6.test"), Type: dns.TypeAAAA}
	resp := h.Resolve(q)
	if resp.RCode != dns.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("v6 resolve = %+v", resp)
	}
	var bm addr.Bitmap128
	copy(bm[:], resp.Answers[0].RData)
	if !bm.Get(5) || bm.Get(130-128) || bm.Count() != 1 {
		t.Fatalf("lower-half bitmap = %s", bm)
	}
	// A clean /25 still yields a (zero) bitmap answer for caching.
	q = dns.Question{Name: addr.MustParseIPv4("10.9.9.9").V6Name("bl6.test"), Type: dns.TypeAAAA}
	resp = h.Resolve(q)
	if resp.RCode != dns.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("clean prefix resolve = %+v", resp)
	}
	// Non-AAAA: NOTIMP.
	resp = h.Resolve(dns.Question{Name: q.Name, Type: dns.TypeA})
	if resp.RCode != dns.RCodeNotImp {
		t.Fatalf("A on v6 handler rcode = %d", resp.RCode)
	}
	// Malformed name: NXDOMAIN.
	resp = h.Resolve(dns.Question{Name: "9.9.9.9.9.bl6.test", Type: dns.TypeAAAA})
	if resp.RCode != dns.RCodeNXDomain {
		t.Fatalf("malformed rcode = %d", resp.RCode)
	}
}

// newTestClient wires a client to an in-memory handler for the list.
func newTestClient(l *List, policy CachePolicy, opts ...Option) (*Client, *dns.MemTransport) {
	var h dns.Handler
	if policy == CachePrefix {
		h = &V6Handler{List: l}
	} else {
		h = &V4Handler{List: l}
	}
	tr := &dns.MemTransport{Handler: h}
	return New(l.Zone(), append([]Option{WithTransport(tr), WithPolicy(policy)}, opts...)...), tr
}

func TestClientV4Lookup(t *testing.T) {
	l := NewList("bl.test")
	listed := addr.MustParseIPv4("1.2.3.4")
	l.Add(listed, CodeZombie)
	for _, policy := range []CachePolicy{CacheNone, CacheIP} {
		c, _ := newTestClient(l, policy)
		r, err := c.Lookup(ctx, listed)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Listed || r.Code != CodeZombie || r.CacheHit {
			t.Fatalf("%v: result = %+v", policy, r)
		}
		r, err = c.Lookup(ctx, addr.MustParseIPv4("1.2.3.5"))
		if err != nil || r.Listed {
			t.Fatalf("%v: unlisted result = %+v, %v", policy, r, err)
		}
	}
}

func TestClientCacheIPBehaviour(t *testing.T) {
	l := NewList("bl.test")
	ip := addr.MustParseIPv4("1.2.3.4")
	l.Add(ip, CodeSpamSrc)
	c, tr := newTestClient(l, CacheIP)
	c.Lookup(ctx, ip)
	r, _ := c.Lookup(ctx, ip)
	if !r.CacheHit || !r.Listed {
		t.Fatalf("second lookup = %+v, want cache hit", r)
	}
	if tr.Queries() != 1 {
		t.Fatalf("upstream queries = %d, want 1", tr.Queries())
	}
	// A neighbour in the same /25 still misses under per-IP caching.
	c.Lookup(ctx, addr.MustParseIPv4("1.2.3.5"))
	if tr.Queries() != 2 {
		t.Fatalf("neighbour should miss: queries = %d", tr.Queries())
	}
	if got := c.HitRatio(); got != 1.0/3.0 {
		t.Fatalf("hit ratio = %v", got)
	}
}

func TestClientCacheNoneNeverCaches(t *testing.T) {
	l := NewList("bl.test")
	ip := addr.MustParseIPv4("1.2.3.4")
	c, tr := newTestClient(l, CacheNone)
	c.Lookup(ctx, ip)
	c.Lookup(ctx, ip)
	if tr.Queries() != 2 {
		t.Fatalf("queries = %d, want 2", tr.Queries())
	}
}

func TestClientPrefixCacheCoversNeighbours(t *testing.T) {
	l := NewList("bl6.test")
	l.Add(addr.MustParseIPv4("1.2.3.4"), CodeSpamSrc)
	l.Add(addr.MustParseIPv4("1.2.3.100"), CodeSpamSrc)
	c, tr := newTestClient(l, CachePrefix)

	r, err := c.Lookup(ctx, addr.MustParseIPv4("1.2.3.4"))
	if err != nil || !r.Listed || r.CacheHit {
		t.Fatalf("first = %+v, %v", r, err)
	}
	// Any IP in the same /25 — listed or not — now resolves locally.
	r, _ = c.Lookup(ctx, addr.MustParseIPv4("1.2.3.100"))
	if !r.Listed || !r.CacheHit {
		t.Fatalf("neighbour listed = %+v", r)
	}
	r, _ = c.Lookup(ctx, addr.MustParseIPv4("1.2.3.50"))
	if r.Listed || !r.CacheHit {
		t.Fatalf("neighbour clean = %+v", r)
	}
	if tr.Queries() != 1 {
		t.Fatalf("queries = %d, want 1", tr.Queries())
	}
	// The other /25 half is a separate bitmap.
	r, _ = c.Lookup(ctx, addr.MustParseIPv4("1.2.3.200"))
	if r.CacheHit {
		t.Fatal("other half should miss")
	}
	if tr.Queries() != 2 {
		t.Fatalf("queries = %d, want 2", tr.Queries())
	}
}

func TestClientTTLExpiry(t *testing.T) {
	l := NewList("bl.test")
	ip := addr.MustParseIPv4("9.9.9.9")
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var h dns.Handler = &V4Handler{List: l}
	tr := &dns.MemTransport{Handler: h}
	c := New("bl.test", WithTransport(tr), WithPolicy(CacheIP), WithTTL(time.Hour), WithClock(clock))
	c.Lookup(ctx, ip)
	now = now.Add(2 * time.Hour)
	r, _ := c.Lookup(ctx, ip)
	if r.CacheHit {
		t.Fatal("expired entry served")
	}
	if tr.Queries() != 2 {
		t.Fatalf("queries = %d, want 2", tr.Queries())
	}
}

func TestClientPrefixEquivalentToV4Property(t *testing.T) {
	// Property: for any blacklist population and probe set, prefix-based
	// lookups report exactly the same listed/unlisted verdicts as classic
	// per-IP lookups (the bitmap "does not punish any IP not blacklisted",
	// §7.1).
	f := func(listedRaw, probeRaw []uint16) bool {
		l4 := NewList("bl.test")
		l6 := NewList("bl6.test")
		for _, r := range listedRaw {
			ip := addr.MakeIPv4(10, 0, byte(r>>8), byte(r))
			l4.Add(ip, CodeSpamSrc)
			l6.Add(ip, CodeSpamSrc)
		}
		cv4, _ := newTestClient(l4, CacheNone)
		cv6, _ := newTestClient(l6, CachePrefix)
		for _, r := range probeRaw {
			ip := addr.MakeIPv4(10, 0, byte(r>>8), byte(r))
			a, err1 := cv4.Lookup(ctx, ip)
			b, err2 := cv6.Lookup(ctx, ip)
			if err1 != nil || err2 != nil || a.Listed != b.Listed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure5Distributions(t *testing.T) {
	if len(Figure5) != 6 {
		t.Fatalf("Figure 5 has %d lists, want 6", len(Figure5))
	}
	lo, hi := 1.0, 0.0
	for _, l := range Figure5 {
		f := l.FractionAbove(100)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
		// Each distribution spans [0, 250] ms.
		if l.FractionAbove(0) != 1 || l.FractionAbove(250) != 0 {
			t.Errorf("%s: support not [0,250]", l.Zone)
		}
		if l.FractionAbove(-5) != 1 {
			t.Errorf("%s: below-support fraction wrong", l.Zone)
		}
	}
	// §4.3: "between 16%–50% of … queries took more than 100 msec".
	if lo < 0.14 || lo > 0.20 {
		t.Errorf("fastest list: %.2f above 100ms, want ≈0.16", lo)
	}
	if hi < 0.45 || hi > 0.55 {
		t.Errorf("slowest list: %.2f above 100ms, want ≈0.50", hi)
	}
}

func TestLatencySamplerWithinSupport(t *testing.T) {
	g := newRNG()
	s := DefaultLatency.Sampler()
	for i := 0; i < 1000; i++ {
		v := s.Sample(g)
		if v < 0 || v > 250 {
			t.Fatalf("sample %v outside [0,250]", v)
		}
	}
}

func TestSimCachePolicies(t *testing.T) {
	mkCache := func(p CachePolicy) *SimCache {
		return NewSimCache(p, time.Hour, DefaultLatency.Sampler(), newRNG())
	}
	ipA, prefA := "1.2.3.4", "1.2.3.0/25"
	ipB, prefB := "1.2.3.9", "1.2.3.0/25" // same /25, different IP

	// CacheNone: every lookup queries upstream.
	c := mkCache(CacheNone)
	c.Lookup(0, ipA, prefA)
	c.Lookup(time.Second, ipA, prefA)
	if c.Misses() != 2 || c.Hits() != 0 {
		t.Fatalf("none: %d/%d", c.Hits(), c.Misses())
	}

	// CacheIP: same IP hits, neighbour misses.
	c = mkCache(CacheIP)
	c.Lookup(0, ipA, prefA)
	l, q := c.Lookup(time.Second, ipA, prefA)
	if q || l != CacheHitLatency {
		t.Fatalf("ip repeat: lat=%v query=%v", l, q)
	}
	if _, q := c.Lookup(2*time.Second, ipB, prefB); !q {
		t.Fatal("ip policy should miss on neighbour")
	}

	// CachePrefix: neighbour in same /25 hits.
	c = mkCache(CachePrefix)
	c.Lookup(0, ipA, prefA)
	if _, q := c.Lookup(time.Second, ipB, prefB); q {
		t.Fatal("prefix policy should hit on neighbour")
	}
	if c.HitRatio() != 0.5 || c.MissRatio() != 0.5 {
		t.Fatalf("ratios = %v/%v", c.HitRatio(), c.MissRatio())
	}
	if got := len(c.Latencies()); got != 2 {
		t.Fatalf("latencies = %d", got)
	}
}

func TestSimCacheTTLExpiry(t *testing.T) {
	c := NewSimCache(CacheIP, time.Minute, DefaultLatency.Sampler(), newRNG())
	c.Lookup(0, "a", "p")
	if _, q := c.Lookup(2*time.Minute, "a", "p"); !q {
		t.Fatal("expired virtual entry served")
	}
}

func TestSimCacheEmptyRatios(t *testing.T) {
	c := NewSimCache(CacheIP, time.Minute, DefaultLatency.Sampler(), newRNG())
	if c.HitRatio() != 0 || c.MissRatio() != 0 {
		t.Fatal("empty cache ratios should be 0")
	}
}

func TestCachePolicyString(t *testing.T) {
	cases := map[CachePolicy]string{
		CacheNone: "none", CacheIP: "ip", CachePrefix: "prefix",
		CachePolicy(9): "CachePolicy(9)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}
