package dnsbl

import (
	"repro/internal/addr"
	"repro/internal/dns"
)

// AnswerTTL is the TTL attached to DNSBL answers; the paper's evaluation
// uses 24 hours because blacklists update infrequently (§7.2).
const AnswerTTL = 24 * 60 * 60 // seconds

// V4Handler answers classic per-IP DNSBL queries over a List:
// an A query for w.z.y.x.<zone> returns 127.0.0.<code> when x.y.z.w is
// listed and NXDOMAIN otherwise (§4.3). Listed answers also carry a TXT
// record describing the listing, as real DNSBLs do.
type V4Handler struct {
	List *List
}

var _ dns.Handler = (*V4Handler)(nil)

// Resolve implements dns.Handler.
func (h *V4Handler) Resolve(q dns.Question) *dns.Message {
	m := &dns.Message{Questions: []dns.Question{q}, Authoritative: true}
	if q.Type != dns.TypeA && q.Type != dns.TypeTXT {
		m.RCode = dns.RCodeNotImp
		return m
	}
	ip, err := addr.ParseReversedName(q.Name, h.List.Zone())
	if err != nil {
		m.RCode = dns.RCodeNXDomain
		return m
	}
	code, listed := h.List.Lookup(ip)
	if !listed {
		// Empty answer section — the "not listed" signal (§4.3).
		m.RCode = dns.RCodeNXDomain
		return m
	}
	if q.Type == dns.TypeA {
		m.Answers = append(m.Answers, dns.ARecord(q.Name, AnswerTTL, 127, 0, 0, byte(code)))
	}
	m.Answers = append(m.Answers,
		dns.TXTRecord(q.Name, AnswerTTL, "listed by "+h.List.Zone()))
	return m
}

// V6Handler answers prefix-based DNSBLv6 queries (§7.1): an AAAA query
// for h.z.y.x.<zone> — h selecting which /25 half of the /24 — returns a
// single AAAA record whose 16 bytes are the blacklist bitmap of that /25.
// Every syntactically valid query gets an answer (possibly the zero
// bitmap), so a mail server can always cache the result for the whole
// neighbourhood.
type V6Handler struct {
	List *List
}

var _ dns.Handler = (*V6Handler)(nil)

// Resolve implements dns.Handler.
func (h *V6Handler) Resolve(q dns.Question) *dns.Message {
	m := &dns.Message{Questions: []dns.Question{q}, Authoritative: true}
	if q.Type != dns.TypeAAAA {
		m.RCode = dns.RCodeNotImp
		return m
	}
	prefix, err := addr.ParseV6Name(q.Name, h.List.Zone())
	if err != nil {
		m.RCode = dns.RCodeNXDomain
		return m
	}
	bm := h.List.Bitmap(prefix)
	m.Answers = append(m.Answers, dns.AAAARecord(q.Name, AnswerTTL, [16]byte(bm)))
	return m
}
