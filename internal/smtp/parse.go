package smtp

import (
	"fmt"
	"strings"
)

// Verb is an SMTP command verb.
type Verb string

// The verbs the server understands.
const (
	VerbHELO Verb = "HELO"
	VerbEHLO Verb = "EHLO"
	VerbMAIL Verb = "MAIL"
	VerbRCPT Verb = "RCPT"
	VerbDATA Verb = "DATA"
	VerbRSET Verb = "RSET"
	VerbNOOP Verb = "NOOP"
	VerbVRFY Verb = "VRFY"
	VerbQUIT Verb = "QUIT"
)

// Command is one parsed SMTP command line.
type Command struct {
	Verb Verb
	// Arg is the raw argument text after the verb.
	Arg string
	// Addr is the parsed mailbox for MAIL/RCPT/VRFY.
	Addr string
}

// ErrSyntax reports an unparseable command argument.
type ErrSyntax struct{ Line string }

func (e *ErrSyntax) Error() string { return fmt.Sprintf("smtp: syntax error in %q", e.Line) }

// ErrUnknownVerb reports an unrecognized command verb.
type ErrUnknownVerb struct{ VerbText string }

func (e *ErrUnknownVerb) Error() string { return fmt.Sprintf("smtp: unknown command %q", e.VerbText) }

// ParseCommand parses one command line (without CRLF).
func ParseCommand(line string) (Command, error) {
	trimmed := strings.TrimRight(line, " \t")
	verbText := trimmed
	arg := ""
	if i := strings.IndexByte(trimmed, ' '); i >= 0 {
		verbText, arg = trimmed[:i], strings.TrimSpace(trimmed[i+1:])
	}
	verb := Verb(strings.ToUpper(verbText))
	cmd := Command{Verb: verb, Arg: arg}
	switch verb {
	case VerbHELO, VerbEHLO:
		if arg == "" {
			return cmd, &ErrSyntax{Line: line}
		}
		return cmd, nil
	case VerbMAIL:
		addr, err := parsePath(arg, "FROM")
		if err != nil {
			return cmd, err
		}
		cmd.Addr = addr
		return cmd, nil
	case VerbRCPT:
		addr, err := parsePath(arg, "TO")
		if err != nil {
			return cmd, err
		}
		if cmd.Addr = addr; addr == "" {
			// RCPT TO:<> is never valid (null path is sender-only).
			return cmd, &ErrSyntax{Line: line}
		}
		return cmd, nil
	case VerbVRFY:
		if arg == "" {
			return cmd, &ErrSyntax{Line: line}
		}
		cmd.Addr = strings.Trim(arg, "<>")
		return cmd, nil
	case VerbDATA, VerbRSET, VerbNOOP, VerbQUIT:
		return cmd, nil
	default:
		return cmd, &ErrUnknownVerb{VerbText: verbText}
	}
}

// parsePath parses "FROM:<addr> [params]" / "TO:<addr> [params]". The
// null reverse-path <> (bounce sender) parses to "".
func parsePath(arg, keyword string) (string, error) {
	upper := strings.ToUpper(arg)
	prefix := keyword + ":"
	if !strings.HasPrefix(upper, prefix) {
		return "", &ErrSyntax{Line: arg}
	}
	rest := strings.TrimSpace(arg[len(prefix):])
	// Strip optional ESMTP parameters after the path.
	path := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		path = rest[:i]
	}
	if !strings.HasPrefix(path, "<") || !strings.HasSuffix(path, ">") {
		return "", &ErrSyntax{Line: arg}
	}
	addr := path[1 : len(path)-1]
	// Drop RFC 5321 source routes ("@relay:user@dom").
	if i := strings.LastIndexByte(addr, ':'); i >= 0 && strings.HasPrefix(addr, "@") {
		addr = addr[i+1:]
	}
	if addr == "" {
		return "", nil
	}
	if err := ValidateAddress(addr); err != nil {
		return "", err
	}
	return addr, nil
}

// ValidateAddress applies the minimal mailbox syntax check the server
// needs: exactly one "@", non-empty local part and domain, no whitespace
// or control bytes.
func ValidateAddress(addr string) error {
	at := strings.IndexByte(addr, '@')
	if at <= 0 || at == len(addr)-1 || strings.IndexByte(addr[at+1:], '@') >= 0 {
		return &ErrSyntax{Line: addr}
	}
	for i := 0; i < len(addr); i++ {
		if c := addr[i]; c <= ' ' || c == 127 {
			return &ErrSyntax{Line: addr}
		}
	}
	return nil
}

// LocalPart returns the mailbox name before the "@".
func LocalPart(addr string) string {
	if i := strings.IndexByte(addr, '@'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// Domain returns the domain after the "@", lowercased.
func Domain(addr string) string {
	if i := strings.IndexByte(addr, '@'); i >= 0 {
		return strings.ToLower(addr[i+1:])
	}
	return ""
}
