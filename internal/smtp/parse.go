package smtp

import (
	"bytes"
	"fmt"
	"strings"
)

// Verb is an SMTP command verb.
type Verb string

// The verbs the server understands.
const (
	VerbHELO Verb = "HELO"
	VerbEHLO Verb = "EHLO"
	VerbMAIL Verb = "MAIL"
	VerbRCPT Verb = "RCPT"
	VerbDATA Verb = "DATA"
	VerbRSET Verb = "RSET"
	VerbNOOP Verb = "NOOP"
	VerbVRFY Verb = "VRFY"
	VerbQUIT Verb = "QUIT"
)

// Command is one parsed SMTP command line. Arg and Addr are views into
// the line passed to ParseCommand: they are valid until the caller's
// line buffer is reused (for Conn.ReadLine, until the next read). The
// session copies what it keeps, so the hot path never allocates.
type Command struct {
	Verb Verb
	// Arg is the raw argument text after the verb.
	Arg []byte
	// Addr is the parsed mailbox for MAIL/RCPT/VRFY.
	Addr []byte
	// Params is the raw ESMTP parameter text after the path for
	// MAIL/RCPT (e.g. "SIZE=1024 XTRACE=..."), empty when absent.
	Params []byte
}

// ErrSyntax reports an unparseable command argument. Line is optional
// detail: the hot-path parser deliberately leaves it empty, because
// malformed commands are attacker-controlled input and capturing the
// offending line would allocate per bad command.
type ErrSyntax struct{ Line string }

func (e *ErrSyntax) Error() string {
	if e.Line == "" {
		return "smtp: syntax error"
	}
	return fmt.Sprintf("smtp: syntax error in %q", e.Line)
}

// ErrUnknownVerb reports an unrecognized command verb. VerbText is
// optional detail, empty on the hot path for the same reason as
// ErrSyntax.Line.
type ErrUnknownVerb struct{ VerbText string }

func (e *ErrUnknownVerb) Error() string {
	if e.VerbText == "" {
		return "smtp: unknown command"
	}
	return fmt.Sprintf("smtp: unknown command %q", e.VerbText)
}

// Shared error instances for the hot path: bad commands cost no heap
// traffic, only a pointer comparison at the caller.
var (
	errSyntax      = &ErrSyntax{}
	errUnknownVerb = &ErrUnknownVerb{}
)

// Verb keys: the first four bytes OR 0x20, packed big-endian. Every verb
// is exactly four ASCII letters, and c|0x20 maps each letter to its
// lowercase form without colliding with any other byte value, so the
// switch below is an exact case-insensitive match with no ToUpper copy.
const (
	keyHELO = 'h'<<24 | 'e'<<16 | 'l'<<8 | 'o'
	keyEHLO = 'e'<<24 | 'h'<<16 | 'l'<<8 | 'o'
	keyMAIL = 'm'<<24 | 'a'<<16 | 'i'<<8 | 'l'
	keyRCPT = 'r'<<24 | 'c'<<16 | 'p'<<8 | 't'
	keyDATA = 'd'<<24 | 'a'<<16 | 't'<<8 | 'a'
	keyRSET = 'r'<<24 | 's'<<16 | 'e'<<8 | 't'
	keyNOOP = 'n'<<24 | 'o'<<16 | 'o'<<8 | 'p'
	keyVRFY = 'v'<<24 | 'r'<<16 | 'f'<<8 | 'y'
	keyQUIT = 'q'<<24 | 'u'<<16 | 'i'<<8 | 't'
)

// matchVerb resolves a raw verb token to its canonical Verb constant
// without copying or uppercasing; "" means unrecognized.
func matchVerb(v []byte) Verb {
	if len(v) != 4 {
		return ""
	}
	k := uint32(v[0]|0x20)<<24 | uint32(v[1]|0x20)<<16 | uint32(v[2]|0x20)<<8 | uint32(v[3]|0x20)
	switch k {
	case keyHELO:
		return VerbHELO
	case keyEHLO:
		return VerbEHLO
	case keyMAIL:
		return VerbMAIL
	case keyRCPT:
		return VerbRCPT
	case keyDATA:
		return VerbDATA
	case keyRSET:
		return VerbRSET
	case keyNOOP:
		return VerbNOOP
	case keyVRFY:
		return VerbVRFY
	case keyQUIT:
		return VerbQUIT
	}
	return ""
}

// ParseCommand parses one command line (without CRLF). It allocates
// nothing: the returned Command's Arg/Addr fields are sub-slices of
// line, and parse errors are shared instances. On error the Command's
// Verb is only set when the verb itself was recognized.
func ParseCommand(line []byte) (Command, error) {
	trimmed := bytes.TrimRight(line, " \t")
	verbText := trimmed
	var arg []byte
	if i := bytes.IndexByte(trimmed, ' '); i >= 0 {
		verbText, arg = trimmed[:i], bytes.TrimSpace(trimmed[i+1:])
	}
	verb := matchVerb(verbText)
	cmd := Command{Verb: verb, Arg: arg}
	switch verb {
	case VerbHELO, VerbEHLO:
		if len(arg) == 0 {
			return cmd, errSyntax
		}
		return cmd, nil
	case VerbMAIL:
		addr, params, err := parsePath(arg, "FROM")
		if err != nil {
			return cmd, err
		}
		cmd.Addr, cmd.Params = addr, params
		return cmd, nil
	case VerbRCPT:
		addr, params, err := parsePath(arg, "TO")
		if err != nil {
			return cmd, err
		}
		cmd.Params = params
		if cmd.Addr = addr; len(addr) == 0 {
			// RCPT TO:<> is never valid (null path is sender-only).
			return cmd, errSyntax
		}
		return cmd, nil
	case VerbVRFY:
		if len(arg) == 0 {
			return cmd, errSyntax
		}
		cmd.Addr = bytes.Trim(arg, "<>")
		return cmd, nil
	case VerbDATA, VerbRSET, VerbNOOP, VerbQUIT:
		return cmd, nil
	default:
		return cmd, errUnknownVerb
	}
}

// parsePath parses "FROM:<addr> [params]" / "TO:<addr> [params]". The
// null reverse-path <> (bounce sender) parses to an empty slice. The
// returned address and parameter text are views into arg; parameters a
// session does not understand stay unparsed there and are dropped, so
// the wire protocol stays RFC-clean for any client.
func parsePath(arg []byte, keyword string) (addrOut, params []byte, err error) {
	n := len(keyword)
	if len(arg) <= n || !equalFoldASCII(arg[:n], keyword) || arg[n] != ':' {
		return nil, nil, errSyntax
	}
	rest := bytes.TrimSpace(arg[n+1:])
	// Split optional ESMTP parameters off the path.
	path := rest
	if i := bytes.IndexByte(rest, ' '); i >= 0 {
		path = rest[:i]
		params = bytes.TrimSpace(rest[i+1:])
	}
	if len(path) < 2 || path[0] != '<' || path[len(path)-1] != '>' {
		return nil, nil, errSyntax
	}
	addr := path[1 : len(path)-1]
	// Drop RFC 5321 source routes ("@relay:user@dom").
	if len(addr) > 0 && addr[0] == '@' {
		if i := bytes.LastIndexByte(addr, ':'); i >= 0 {
			addr = addr[i+1:]
		}
	}
	if len(addr) == 0 {
		return nil, params, nil
	}
	if !validAddress(addr) {
		return nil, nil, errSyntax
	}
	return addr, params, nil
}

// ParamValue scans ESMTP parameter text (space-separated KEY=value
// tokens, as in Command.Params) for key and returns its value as a view
// into params, or nil when absent. The match is ASCII-case-insensitive
// and the scan never allocates. key must be upper-case ASCII.
func ParamValue(params []byte, key string) []byte {
	for len(params) > 0 {
		tok := params
		if i := bytes.IndexByte(params, ' '); i >= 0 {
			tok, params = params[:i], bytes.TrimLeft(params[i+1:], " ")
		} else {
			params = nil
		}
		n := len(key)
		if len(tok) > n && tok[n] == '=' && equalFoldASCII(tok[:n], key) {
			return tok[n+1:]
		}
	}
	return nil
}

// equalFoldASCII reports whether b matches the ASCII string s
// case-insensitively. s must be upper-case ASCII letters only.
func equalFoldASCII(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if b[i] != s[i] && b[i]|0x20 != s[i]|0x20 {
			return false
		}
	}
	return true
}

// validAddress applies the minimal mailbox syntax check on a byte view:
// exactly one "@", non-empty local part and domain, no whitespace or
// control bytes.
func validAddress(addr []byte) bool {
	at := bytes.IndexByte(addr, '@')
	if at <= 0 || at == len(addr)-1 || bytes.IndexByte(addr[at+1:], '@') >= 0 {
		return false
	}
	for i := 0; i < len(addr); i++ {
		if c := addr[i]; c <= ' ' || c == 127 {
			return false
		}
	}
	return true
}

// ValidateAddress applies the minimal mailbox syntax check the server
// needs: exactly one "@", non-empty local part and domain, no whitespace
// or control bytes.
func ValidateAddress(addr string) error {
	at := strings.IndexByte(addr, '@')
	if at <= 0 || at == len(addr)-1 || strings.IndexByte(addr[at+1:], '@') >= 0 {
		return &ErrSyntax{Line: addr}
	}
	for i := 0; i < len(addr); i++ {
		if c := addr[i]; c <= ' ' || c == 127 {
			return &ErrSyntax{Line: addr}
		}
	}
	return nil
}

// LocalPart returns the mailbox name before the "@".
func LocalPart(addr string) string {
	if i := strings.IndexByte(addr, '@'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// Domain returns the domain after the "@", lowercased.
func Domain(addr string) string {
	if i := strings.IndexByte(addr, '@'); i >= 0 {
		return strings.ToLower(addr[i+1:])
	}
	return ""
}
