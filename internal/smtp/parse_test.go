package smtp

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseCommandVerbs(t *testing.T) {
	cases := []struct {
		line string
		verb Verb
		addr string
		ok   bool
	}{
		{"HELO client.example", VerbHELO, "", true},
		{"helo client.example", VerbHELO, "", true},
		{"EHLO [192.0.2.1]", VerbEHLO, "", true},
		{"HELO", VerbHELO, "", false},
		{"MAIL FROM:<a@b.c>", VerbMAIL, "a@b.c", true},
		{"mail from:<a@b.c>", VerbMAIL, "a@b.c", true},
		{"MAIL FROM:<>", VerbMAIL, "", true}, // null reverse-path
		{"MAIL FROM:<a@b.c> SIZE=1000", VerbMAIL, "a@b.c", true},
		{"MAIL FROM:a@b.c", VerbMAIL, "", false},
		{"MAIL TO:<a@b.c>", VerbMAIL, "", false},
		{"RCPT TO:<u@d.com>", VerbRCPT, "u@d.com", true},
		{"RCPT TO:<@relay.example:u@d.com>", VerbRCPT, "u@d.com", true},
		{"RCPT TO:<>", VerbRCPT, "", false}, // null forward-path invalid
		{"RCPT FROM:<u@d.com>", VerbRCPT, "", false},
		{"DATA", VerbDATA, "", true},
		{"QUIT", VerbQUIT, "", true},
		{"RSET", VerbRSET, "", true},
		{"NOOP", VerbNOOP, "", true},
		{"VRFY user", VerbVRFY, "user", true},
		{"VRFY <u@d.com>", VerbVRFY, "u@d.com", true},
		{"VRFY", VerbVRFY, "", false},
		{"BOGUS arg", Verb(""), "", false},
		{"", Verb(""), "", false},
	}
	for _, c := range cases {
		cmd, err := ParseCommand([]byte(c.line))
		if c.ok {
			if err != nil {
				t.Errorf("ParseCommand(%q) = %v", c.line, err)
				continue
			}
			if cmd.Verb != c.verb || string(cmd.Addr) != c.addr {
				t.Errorf("ParseCommand(%q) = %+v, want verb %s addr %q", c.line, cmd, c.verb, c.addr)
			}
		} else if err == nil {
			t.Errorf("ParseCommand(%q) accepted", c.line)
		}
	}
}

func TestParseErrorTypes(t *testing.T) {
	_, err := ParseCommand([]byte("FROBNICATE now"))
	var unknown *ErrUnknownVerb
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want ErrUnknownVerb", err)
	}
	_, err = ParseCommand([]byte("MAIL oops"))
	var syn *ErrSyntax
	if !errors.As(err, &syn) {
		t.Fatalf("err = %v, want ErrSyntax", err)
	}
}

func TestParseErrorsFormatLazily(t *testing.T) {
	// The shared hot-path instances carry no captured text but still
	// produce a usable message; the detailed forms keep the old output.
	if msg := errSyntax.Error(); !strings.Contains(msg, "syntax") {
		t.Errorf("bare syntax error message = %q", msg)
	}
	if msg := errUnknownVerb.Error(); !strings.Contains(msg, "unknown") {
		t.Errorf("bare unknown-verb message = %q", msg)
	}
	if msg := (&ErrSyntax{Line: "MAIL oops"}).Error(); !strings.Contains(msg, `"MAIL oops"`) {
		t.Errorf("detailed syntax message = %q", msg)
	}
	if msg := (&ErrUnknownVerb{VerbText: "BDAT"}).Error(); !strings.Contains(msg, `"BDAT"`) {
		t.Errorf("detailed unknown-verb message = %q", msg)
	}
}

func TestMatchVerbFolding(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Verb
	}{
		{"HELO", VerbHELO}, {"helo", VerbHELO}, {"HeLo", VerbHELO},
		{"EHLO", VerbEHLO}, {"MAIL", VerbMAIL}, {"rcpt", VerbRCPT},
		{"DATA", VerbDATA}, {"RSET", VerbRSET}, {"NOOP", VerbNOOP},
		{"VRFY", VerbVRFY}, {"quit", VerbQUIT},
		// Non-letters must not fold into verbs: '(' is 'H'^0x60 away…
		{"HEL\x2f", ""}, {"H\x05LO", ""}, {"HEL", ""}, {"HELOX", ""},
		{"@#$%", ""}, {"", ""},
	} {
		if got := matchVerb([]byte(c.in)); got != c.want {
			t.Errorf("matchVerb(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestValidateAddress(t *testing.T) {
	good := []string{"a@b.c", "user.name@sub.domain.org", "x@y"}
	for _, a := range good {
		if err := ValidateAddress(a); err != nil {
			t.Errorf("ValidateAddress(%q) = %v", a, err)
		}
	}
	bad := []string{"", "nodomain", "@d.com", "u@", "a@b@c", "a b@c.d", "a@b\x01c"}
	for _, a := range bad {
		if err := ValidateAddress(a); err == nil {
			t.Errorf("ValidateAddress(%q) accepted", a)
		}
	}
}

func TestLocalPartDomain(t *testing.T) {
	if LocalPart("user@Dom.COM") != "user" {
		t.Error("LocalPart failed")
	}
	if Domain("user@Dom.COM") != "dom.com" {
		t.Error("Domain should lowercase")
	}
	if LocalPart("bare") != "bare" || Domain("bare") != "" {
		t.Error("address without @ mishandled")
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(line []byte) bool {
		ParseCommand(line) //nolint:errcheck // only checking for panics
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParsedAddressAlwaysValidProperty(t *testing.T) {
	// Property: any address ParseCommand returns passes ValidateAddress
	// (or is the empty null path for MAIL).
	f := func(s string) bool {
		cmd, err := ParseCommand([]byte("MAIL FROM:<" + s + ">"))
		if err != nil {
			return true
		}
		return len(cmd.Addr) == 0 || ValidateAddress(string(cmd.Addr)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
