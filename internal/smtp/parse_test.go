package smtp

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseCommandVerbs(t *testing.T) {
	cases := []struct {
		line string
		verb Verb
		addr string
		ok   bool
	}{
		{"HELO client.example", VerbHELO, "", true},
		{"helo client.example", VerbHELO, "", true},
		{"EHLO [192.0.2.1]", VerbEHLO, "", true},
		{"HELO", VerbHELO, "", false},
		{"MAIL FROM:<a@b.c>", VerbMAIL, "a@b.c", true},
		{"mail from:<a@b.c>", VerbMAIL, "a@b.c", true},
		{"MAIL FROM:<>", VerbMAIL, "", true}, // null reverse-path
		{"MAIL FROM:<a@b.c> SIZE=1000", VerbMAIL, "a@b.c", true},
		{"MAIL FROM:a@b.c", VerbMAIL, "", false},
		{"MAIL TO:<a@b.c>", VerbMAIL, "", false},
		{"RCPT TO:<u@d.com>", VerbRCPT, "u@d.com", true},
		{"RCPT TO:<@relay.example:u@d.com>", VerbRCPT, "u@d.com", true},
		{"RCPT TO:<>", VerbRCPT, "", false}, // null forward-path invalid
		{"RCPT FROM:<u@d.com>", VerbRCPT, "", false},
		{"DATA", VerbDATA, "", true},
		{"QUIT", VerbQUIT, "", true},
		{"RSET", VerbRSET, "", true},
		{"NOOP", VerbNOOP, "", true},
		{"VRFY user", VerbVRFY, "user", true},
		{"VRFY <u@d.com>", VerbVRFY, "u@d.com", true},
		{"VRFY", VerbVRFY, "", false},
		{"BOGUS arg", Verb("BOGUS"), "", false},
		{"", Verb(""), "", false},
	}
	for _, c := range cases {
		cmd, err := ParseCommand(c.line)
		if c.ok {
			if err != nil {
				t.Errorf("ParseCommand(%q) = %v", c.line, err)
				continue
			}
			if cmd.Verb != c.verb || cmd.Addr != c.addr {
				t.Errorf("ParseCommand(%q) = %+v, want verb %s addr %q", c.line, cmd, c.verb, c.addr)
			}
		} else if err == nil {
			t.Errorf("ParseCommand(%q) accepted", c.line)
		}
	}
}

func TestParseUnknownVerbErrorType(t *testing.T) {
	_, err := ParseCommand("FROBNICATE now")
	var unknown *ErrUnknownVerb
	if !errors.As(err, &unknown) || unknown.VerbText != "FROBNICATE" {
		t.Fatalf("err = %v, want ErrUnknownVerb", err)
	}
	_, err = ParseCommand("MAIL oops")
	var syn *ErrSyntax
	if !errors.As(err, &syn) {
		t.Fatalf("err = %v, want ErrSyntax", err)
	}
}

func TestValidateAddress(t *testing.T) {
	good := []string{"a@b.c", "user.name@sub.domain.org", "x@y"}
	for _, a := range good {
		if err := ValidateAddress(a); err != nil {
			t.Errorf("ValidateAddress(%q) = %v", a, err)
		}
	}
	bad := []string{"", "nodomain", "@d.com", "u@", "a@b@c", "a b@c.d", "a@b\x01c"}
	for _, a := range bad {
		if err := ValidateAddress(a); err == nil {
			t.Errorf("ValidateAddress(%q) accepted", a)
		}
	}
}

func TestLocalPartDomain(t *testing.T) {
	if LocalPart("user@Dom.COM") != "user" {
		t.Error("LocalPart failed")
	}
	if Domain("user@Dom.COM") != "dom.com" {
		t.Error("Domain should lowercase")
	}
	if LocalPart("bare") != "bare" || Domain("bare") != "" {
		t.Error("address without @ mishandled")
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(line string) bool {
		ParseCommand(line) //nolint:errcheck // only checking for panics
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParsedAddressAlwaysValidProperty(t *testing.T) {
	// Property: any address ParseCommand returns passes ValidateAddress
	// (or is the empty null path for MAIL).
	f := func(s string) bool {
		cmd, err := ParseCommand("MAIL FROM:<" + s + ">")
		if err != nil {
			return true
		}
		return cmd.Addr == "" || ValidateAddress(cmd.Addr) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
