package smtp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
)

// Limits on protocol elements, following RFC 5321 §4.5.3 with the
// postfix-style message size cap.
const (
	// MaxLineLen bounds a command line including CRLF.
	MaxLineLen = 1024
	// MaxMessageBytes bounds the DATA payload after dot-decoding.
	MaxMessageBytes = 16 << 20
)

// connBufSize is the size of a Conn's read and write buffers. It must
// exceed MaxLineLen so a maximal command line always fits in one
// ReadSlice view.
const connBufSize = 4096

// ErrLineTooLong is returned when a command line exceeds MaxLineLen.
var ErrLineTooLong = errors.New("smtp: line too long")

// ErrMessageTooBig is returned when DATA exceeds MaxMessageBytes.
var ErrMessageTooBig = errors.New("smtp: message exceeds size limit")

// Conn wraps a bidirectional stream with SMTP line discipline: CRLF line
// reads with length limits, reply writing, and dot-encoded data transfer.
// The hot methods (ReadLine, WriteReply, ReadData) are allocation-free in
// steady state: lines are views into the read buffer, replies come from
// the preformatted wire table or the scratch buffer, and DATA bodies
// accumulate into a reusable buffer grown in place.
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer
	// scratch formats non-canonical replies without fmt.
	scratch []byte
	// data is the reusable DATA accumulation buffer; ReadData returns a
	// view into it, valid until the next ReadData on this Conn.
	data []byte
}

// NewConn returns a Conn over rw. Server code on the accept path should
// prefer AcquireConn/ReleaseConn, which reuse the buffers across
// connections.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReaderSize(rw, connBufSize), w: bufio.NewWriterSize(rw, connBufSize)}
}

// ReadLine reads one CRLF- (or bare-LF-) terminated line without its
// terminator. The returned slice is a view into the read buffer, valid
// only until the next read on this Conn; callers that keep it must copy.
// Lines longer than MaxLineLen fail with ErrLineTooLong after consuming
// through the next terminator, so the session can answer 500 and
// resynchronize.
func (c *Conn) ReadLine() ([]byte, error) {
	line, err := c.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Longer than the whole buffer: drain through the terminator so
		// the stream stays synchronized, then report the oversize.
		for err == bufio.ErrBufferFull {
			_, err = c.r.ReadSlice('\n')
		}
		if err != nil {
			return nil, err
		}
		return nil, ErrLineTooLong
	}
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			// A final unterminated line still counts.
			return trimCR(line), nil
		}
		return nil, err
	}
	if len(line) > MaxLineLen {
		return nil, ErrLineTooLong
	}
	return trimCR(line[:len(line)-1]), nil
}

// trimCR drops one trailing carriage return.
func trimCR(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		return line[:n-1]
	}
	return line
}

// writeReply buffers one reply line without flushing: canonical replies
// come straight from the preformatted wire table, everything else is
// formatted into the scratch buffer.
func (c *Conn) writeReply(r Reply) error {
	if wire, ok := replyWires[r]; ok {
		_, err := c.w.Write(wire)
		return err
	}
	c.scratch = appendReply(c.scratch[:0], r)
	_, err := c.w.Write(c.scratch)
	return err
}

// WriteReply sends one reply line and flushes.
func (c *Conn) WriteReply(r Reply) error {
	if err := c.writeReply(r); err != nil {
		return err
	}
	return c.w.Flush()
}

// WriteReplyLazy buffers one reply line without flushing. The dialog
// loop uses it to batch the replies of a pipelined command burst into
// one vectored flush: as long as another complete command is already
// buffered (InputPending), the reply can wait for its batch.
func (c *Conn) WriteReplyLazy(r Reply) error { return c.writeReply(r) }

// Flush writes out any buffered replies.
func (c *Conn) Flush() error { return c.w.Flush() }

// InputPending reports whether a complete command line is already
// buffered on the read side — the pipelining signal that makes it safe
// to delay a reply flush without deadlocking a waiting client.
func (c *Conn) InputPending() bool {
	n := c.r.Buffered()
	if n == 0 {
		return false
	}
	buf, err := c.r.Peek(n)
	if err != nil {
		return false
	}
	return bytes.IndexByte(buf, '\n') >= 0
}

// WriteMultiReply sends a multiline reply (all but the last line use the
// code-hyphen form) and flushes.
func (c *Conn) WriteMultiReply(code int, lines []string) error {
	for i, line := range lines {
		sep := "-"
		if i == len(lines)-1 {
			sep = " "
		}
		if _, err := fmt.Fprintf(c.w, "%d%s%s\r\n", code, sep, line); err != nil {
			return err
		}
	}
	return c.w.Flush()
}

// WriteLine sends one raw line with CRLF and flushes.
func (c *Conn) WriteLine(line string) error {
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	if _, err := c.w.WriteString("\r\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

// ReadData reads a dot-terminated DATA payload, removing dot-stuffing
// (RFC 5321 §4.5.2): a leading ".." becomes ".", and a lone "." ends the
// message. Lines are joined with CRLF. The limit caps the decoded size.
// The returned slice is a view into the Conn's reusable body buffer,
// valid until the next ReadData; callers that keep the body must copy
// (the queue does, on Enqueue).
func (c *Conn) ReadData(limit int) ([]byte, error) {
	if limit <= 0 {
		limit = MaxMessageBytes
	}
	buf := c.data[:0]
	tooBig := false
	atStart := true // at the beginning of a protocol line
	for {
		chunk, err := c.r.ReadSlice('\n')
		full := err == nil // chunk ends with '\n'
		if err == bufio.ErrBufferFull {
			err = nil
		}
		if err != nil {
			c.data = buf
			return nil, fmt.Errorf("smtp: reading data: %w", err)
		}
		if atStart {
			if full && (len(chunk) == 2 && chunk[0] == '.' || len(chunk) == 3 && chunk[0] == '.' && chunk[1] == '\r') {
				// Lone "." terminator.
				c.data = buf
				if tooBig {
					return nil, ErrMessageTooBig
				}
				return buf, nil
			}
			if len(chunk) > 0 && chunk[0] == '.' {
				// Remove dot-stuffing.
				chunk = chunk[1:]
			}
		}
		if full {
			// Normalize the terminator to CRLF.
			chunk = trimCR(chunk[:len(chunk)-1])
		}
		if !tooBig {
			need := len(buf) + len(chunk)
			if full {
				need += 2
			}
			if need > limit {
				// Keep consuming to the terminating dot so the session can
				// report 552 and stay synchronized.
				tooBig = true
			} else {
				buf = append(buf, chunk...)
				if full {
					buf = append(buf, '\r', '\n')
				}
			}
		}
		atStart = full
	}
}

// WriteData sends a payload with dot-stuffing applied and the terminating
// dot, then flushes. The payload is split on CRLF or LF.
func (c *Conn) WriteData(body []byte) error {
	for len(body) > 0 {
		line := body
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			line = trimCR(body[:i])
			body = body[i+1:]
		} else {
			body = nil
		}
		if len(line) > 0 && line[0] == '.' {
			if err := c.w.WriteByte('.'); err != nil {
				return err
			}
		}
		if _, err := c.w.Write(line); err != nil {
			return err
		}
		if _, err := c.w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	if _, err := c.w.WriteString(".\r\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

// ReadReply reads one (possibly multiline) server reply. This is the
// client side; it may allocate for the reply text.
func (c *Conn) ReadReply() (Reply, error) {
	var code int
	var texts []string
	for {
		line, err := c.ReadLine()
		if err != nil {
			return Reply{}, err
		}
		if len(line) < 3 {
			return Reply{}, fmt.Errorf("smtp: short reply line %q", line)
		}
		n, ok := parseCode(line[:3])
		if !ok {
			return Reply{}, fmt.Errorf("smtp: bad reply code in %q", line)
		}
		code = n
		more := len(line) > 3 && line[3] == '-'
		text := ""
		if len(line) > 4 {
			text = string(line[4:])
		}
		texts = append(texts, text)
		if !more {
			if len(texts) == 1 {
				return Reply{Code: code, Text: texts[0]}, nil
			}
			return Reply{Code: code, Text: joinLines(texts)}, nil
		}
	}
}

// parseCode parses a 3-digit reply code.
func parseCode(b []byte) (int, bool) {
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func joinLines(texts []string) string {
	var b bytes.Buffer
	for i, t := range texts {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t)
	}
	return b.String()
}
