package smtp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Limits on protocol elements, following RFC 5321 §4.5.3 with the
// postfix-style message size cap.
const (
	// MaxLineLen bounds a command line including CRLF.
	MaxLineLen = 1024
	// MaxMessageBytes bounds the DATA payload after dot-decoding.
	MaxMessageBytes = 16 << 20
)

// ErrLineTooLong is returned when a command line exceeds MaxLineLen.
var ErrLineTooLong = errors.New("smtp: line too long")

// ErrMessageTooBig is returned when DATA exceeds MaxMessageBytes.
var ErrMessageTooBig = errors.New("smtp: message exceeds size limit")

// Conn wraps a bidirectional stream with SMTP line discipline: CRLF line
// reads with length limits, reply writing, and dot-encoded data transfer.
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer
}

// NewConn returns a Conn over rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReaderSize(rw, 4096), w: bufio.NewWriterSize(rw, 4096)}
}

// ReadLine reads one CRLF- (or bare-LF-) terminated line without its
// terminator. Lines longer than MaxLineLen fail with ErrLineTooLong after
// consuming through the next terminator, so the session can answer 500
// and resynchronize.
func (c *Conn) ReadLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		if err == io.EOF && line != "" {
			// A final unterminated line still counts.
			return strings.TrimRight(line, "\r"), nil
		}
		return "", err
	}
	if len(line) > MaxLineLen {
		return "", ErrLineTooLong
	}
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return line, nil
}

// WriteReply sends one reply line and flushes.
func (c *Conn) WriteReply(r Reply) error {
	if _, err := fmt.Fprintf(c.w, "%d %s\r\n", r.Code, r.Text); err != nil {
		return err
	}
	return c.w.Flush()
}

// WriteMultiReply sends a multiline reply (all but the last line use the
// code-hyphen form) and flushes.
func (c *Conn) WriteMultiReply(code int, lines []string) error {
	for i, line := range lines {
		sep := "-"
		if i == len(lines)-1 {
			sep = " "
		}
		if _, err := fmt.Fprintf(c.w, "%d%s%s\r\n", code, sep, line); err != nil {
			return err
		}
	}
	return c.w.Flush()
}

// WriteLine sends one raw line with CRLF and flushes.
func (c *Conn) WriteLine(line string) error {
	if _, err := c.w.WriteString(line + "\r\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

// ReadData reads a dot-terminated DATA payload, removing dot-stuffing
// (RFC 5321 §4.5.2): a leading ".." becomes ".", and a lone "." ends the
// message. Lines are joined with CRLF. The limit caps the decoded size.
func (c *Conn) ReadData(limit int) ([]byte, error) {
	if limit <= 0 {
		limit = MaxMessageBytes
	}
	var buf bytes.Buffer
	tooBig := false
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("smtp: reading data: %w", err)
		}
		line = strings.TrimSuffix(line, "\n")
		line = strings.TrimSuffix(line, "\r")
		if line == "." {
			if tooBig {
				return nil, ErrMessageTooBig
			}
			return buf.Bytes(), nil
		}
		if strings.HasPrefix(line, ".") {
			line = line[1:]
		}
		if buf.Len()+len(line)+2 > limit {
			// Keep consuming to the terminating dot so the session can
			// report 552 and stay synchronized.
			tooBig = true
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\r\n")
	}
}

// WriteData sends a payload with dot-stuffing applied and the terminating
// dot, then flushes. The payload is split on CRLF or LF.
func (c *Conn) WriteData(body []byte) error {
	for _, line := range splitLines(body) {
		if strings.HasPrefix(line, ".") {
			if _, err := c.w.WriteString("."); err != nil {
				return err
			}
		}
		if _, err := c.w.WriteString(line + "\r\n"); err != nil {
			return err
		}
	}
	if _, err := c.w.WriteString(".\r\n"); err != nil {
		return err
	}
	return c.w.Flush()
}

func splitLines(body []byte) []string {
	if len(body) == 0 {
		return nil
	}
	s := string(body)
	s = strings.ReplaceAll(s, "\r\n", "\n")
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// ReadReply reads one (possibly multiline) server reply.
func (c *Conn) ReadReply() (Reply, error) {
	var code int
	var texts []string
	for {
		line, err := c.ReadLine()
		if err != nil {
			return Reply{}, err
		}
		if len(line) < 3 {
			return Reply{}, fmt.Errorf("smtp: short reply line %q", line)
		}
		n, err := strconv.Atoi(line[:3])
		if err != nil {
			return Reply{}, fmt.Errorf("smtp: bad reply code in %q", line)
		}
		code = n
		more := len(line) > 3 && line[3] == '-'
		text := ""
		if len(line) > 4 {
			text = line[4:]
		}
		texts = append(texts, text)
		if !more {
			return Reply{Code: code, Text: strings.Join(texts, "\n")}, nil
		}
	}
}
