package smtp

import (
	"bufio"
	"io"
	"sync"
)

// Per-connection state pooling. An accepted connection needs a bufio
// reader/writer pair (4 KiB each), a Conn with its scratch and DATA
// buffers, and a Session with its recipient slots. Allocating those per
// accept dominates the heap profile of a sinkhole workload where most
// connections are short bounce dialogs; pooling them makes the accept
// path allocation-free in steady state, which is exactly the regime the
// paper's front end lives in (thousands of short-lived spam connections
// per second).
//
// maxPooledData bounds the DATA buffer a pooled Conn may retain: one
// outsized message should not pin 16 MiB in the pool forever.
const maxPooledData = 256 << 10

var connPool = sync.Pool{
	New: func() any {
		return &Conn{
			r: bufio.NewReaderSize(nil, connBufSize),
			w: bufio.NewWriterSize(nil, connBufSize),
		}
	},
}

var sessionPool = sync.Pool{
	New: func() any { return &Session{} },
}

// AcquireConn returns a pooled Conn reset onto rw. Release it with
// ReleaseConn when the connection is done.
func AcquireConn(rw io.ReadWriter) *Conn {
	c := connPool.Get().(*Conn)
	c.r.Reset(rw)
	c.w.Reset(rw)
	return c
}

// ReleaseConn returns c to the pool. The caller must not use c (or any
// line/body view obtained from it) afterwards.
func ReleaseConn(c *Conn) {
	if c == nil {
		return
	}
	c.r.Reset(nil)
	c.w.Reset(nil)
	if cap(c.data) > maxPooledData {
		c.data = nil
	}
	connPool.Put(c)
}

// AcquireSession returns a pooled Session reset with cfg. Release it with
// ReleaseSession when the connection is done.
func AcquireSession(cfg Config) *Session {
	s := sessionPool.Get().(*Session)
	s.Reset(cfg)
	return s
}

// ReleaseSession returns s to the pool, dropping the config so pooled
// sessions do not pin policy closures (and the servers they capture).
func ReleaseSession(s *Session) {
	if s == nil {
		return
	}
	s.cfg = Config{}
	sessionPool.Put(s)
}
