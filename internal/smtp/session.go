package smtp

import "repro/internal/trace"

// State is the SMTP session state.
type State int

// Session states.
const (
	// StateStart awaits HELO/EHLO.
	StateStart State = iota + 1
	// StateGreeted awaits MAIL FROM.
	StateGreeted
	// StateMail has a sender and awaits RCPT TO.
	StateMail
	// StateRcpt has at least one accepted recipient; DATA is allowed.
	StateRcpt
	// StateQuit is terminal.
	StateQuit
)

// Action tells the connection driver what to do after a command's reply
// has been sent.
type Action int

// Actions returned by Session.Command.
const (
	// ActionNone continues reading commands.
	ActionNone Action = iota + 1
	// ActionData switches to reading the dot-terminated message body;
	// pass it to Session.FinishData.
	ActionData
	// ActionQuit closes the connection after the reply.
	ActionQuit
)

// Config parameterizes a session. The zero value works for tests; servers
// set the hostname and the recipient validator (the access-database hook
// smtpd queries, §2).
type Config struct {
	// Hostname appears in the banner and HELO reply.
	Hostname string
	// ValidateRcpt reports whether a recipient mailbox exists. nil
	// accepts everything.
	ValidateRcpt func(addr string) bool
	// ValidateRcptBytes is the allocation-free form of ValidateRcpt,
	// preferred when both are set: the session passes the address as a
	// view into the command line instead of converting it to a string.
	// The callee must not retain the slice past the call.
	ValidateRcptBytes func(addr []byte) bool
	// CheckMail, if non-nil, is the policy hook for MAIL FROM: a non-nil
	// reply (e.g. a 450 rate-limit tempfail) overrides acceptance and
	// leaves the session awaiting another MAIL.
	CheckMail func(sender string) *Reply
	// CheckRcpt, if non-nil, is the policy hook for recipients that
	// passed ValidateRcpt: a non-nil reply (e.g. a greylist 450)
	// overrides acceptance without recording the recipient, so the
	// hybrid front end keeps the connection un-trusted.
	CheckRcpt func(sender, rcpt string) *Reply
	// MaxRcpts caps accepted recipients per mail (0 = postfix default 50).
	MaxRcpts int
	// MaxMessageBytes caps the DATA payload (0 = MaxMessageBytes).
	MaxMessageBytes int
	// Ehlo, if non-nil, is the (precomputed, possibly multiline) reply
	// to EHLO — hostname first line, one advertised extension keyword
	// per continuation. nil answers EHLO like HELO: no extensions.
	Ehlo *Reply
}

// Envelope is one completed mail transaction.
type Envelope struct {
	Helo   string
	Sender string
	Rcpts  []string
	Data   []byte
	// Trace is the message trace context received as an XTRACE MAIL
	// parameter; the zero Context when the client sent none.
	Trace trace.Context
}

// Session is the per-connection SMTP state machine. Both architectures
// drive the same machine: the vanilla server runs it inside a worker for
// the whole dialog, the hybrid master runs it in the event loop until the
// first valid RCPT and then hands it to a worker (§5.3 transfers exactly
// the state this struct holds: client identity, sender, recipients).
//
// The machine is allocation-free in steady state: HELO name, sender, and
// recipients are copied into buffers that are reused across transactions
// (and, via AcquireSession, across connections), and duplicate-recipient
// detection runs over an open-addressed index instead of a string scan.
// Heap traffic only happens on first growth and when FinishData
// materializes the Envelope the queue keeps.
type Session struct {
	cfg   Config
	state State

	helo   []byte
	sender []byte
	// senderSet distinguishes MAIL FROM:<> (bounce sender) from no MAIL.
	senderSet bool

	// Accepted recipients live in nrcpts reused slot buffers; rcptIdx is
	// the case-folded duplicate index over them.
	nrcpts   int
	rcptBufs [][]byte
	rcptIdx  rcptIndex

	// xtrace is the trace context carried by the current transaction's
	// XTRACE MAIL parameter (held by value: no allocation).
	xtrace trace.Context

	rejectedRcpts int
	mailsDone     int
}

// NewSession returns a session awaiting HELO.
func NewSession(cfg Config) *Session {
	s := &Session{}
	s.Reset(cfg)
	return s
}

// Reset re-initializes the session for a new connection with cfg,
// keeping grown buffers so a pooled session serves its next connection
// without allocating.
func (s *Session) Reset(cfg Config) {
	if cfg.Hostname == "" {
		cfg.Hostname = "mail.example.org"
	}
	if cfg.MaxRcpts == 0 {
		cfg.MaxRcpts = 50
	}
	if cfg.MaxMessageBytes == 0 {
		cfg.MaxMessageBytes = MaxMessageBytes
	}
	s.cfg = cfg
	s.state = StateStart
	s.helo = s.helo[:0]
	s.resetMail()
	s.rejectedRcpts = 0
	s.mailsDone = 0
}

// Greeting returns the 220 banner to send on accept.
func (s *Session) Greeting() Reply { return Banner(s.cfg.Hostname) }

// State returns the current protocol state.
func (s *Session) State() State { return s.state }

// Helo returns the client's HELO/EHLO name.
func (s *Session) Helo() string { return string(s.helo) }

// Sender returns the MAIL FROM address ("" for the null sender).
func (s *Session) Sender() string { return string(s.sender) }

// Rcpts returns the accepted recipients so far.
func (s *Session) Rcpts() []string {
	if s.nrcpts == 0 {
		return nil
	}
	out := make([]string, s.nrcpts)
	for i := 0; i < s.nrcpts; i++ {
		out[i] = string(s.rcptBufs[i])
	}
	return out
}

// HasValidRcpt reports whether at least one recipient has been accepted —
// the fork-after-trust delegation trigger (§5.1: "if even a single
// recipient address is confirmed to be valid, the master process
// delegates the connection").
func (s *Session) HasValidRcpt() bool { return s.nrcpts > 0 }

// RejectedRcpts returns the number of 550-rejected recipients — the
// bounce signal of §4.1.
func (s *Session) RejectedRcpts() int { return s.rejectedRcpts }

// MailsCompleted returns the number of completed DATA transactions.
func (s *Session) MailsCompleted() int { return s.mailsDone }

// MaxMessageBytes returns the configured DATA cap for Conn.ReadData.
func (s *Session) MaxMessageBytes() int { return s.cfg.MaxMessageBytes }

// Command feeds one raw command line as a string. It is the convenience
// form of CommandBytes for tests and tools; the server's dialog loop
// calls CommandBytes directly with the ReadLine view.
func (s *Session) Command(line string) (Reply, Action) {
	return s.CommandBytes([]byte(line))
}

// CommandBytes feeds one raw command line (without CRLF) to the state
// machine and returns the reply to send plus the driver action. The line
// is only read during the call; the session copies anything it keeps.
func (s *Session) CommandBytes(line []byte) (Reply, Action) {
	if s.state == StateQuit {
		return ReplyBadSequence, ActionQuit
	}
	cmd, err := ParseCommand(line)
	if err != nil {
		if _, ok := err.(*ErrUnknownVerb); ok {
			return ReplyUnknownCommand, ActionNone
		}
		return ReplySyntax, ActionNone
	}
	switch cmd.Verb {
	case VerbQUIT:
		s.state = StateQuit
		return ReplyBye, ActionQuit
	case VerbNOOP:
		return ReplyOK, ActionNone
	case VerbRSET:
		s.resetMail()
		if s.state != StateStart {
			s.state = StateGreeted
		}
		return ReplyOK, ActionNone
	case VerbVRFY:
		// Postfix answers 252 without disclosing mailbox existence;
		// mirroring that avoids turning VRFY into a harvesting oracle.
		return ReplyVrfy, ActionNone
	case VerbHELO, VerbEHLO:
		s.helo = append(s.helo[:0], cmd.Arg...)
		s.resetMail()
		s.state = StateGreeted
		if cmd.Verb == VerbEHLO && s.cfg.Ehlo != nil {
			return *s.cfg.Ehlo, ActionNone
		}
		return HeloReply(s.cfg.Hostname), ActionNone
	case VerbMAIL:
		if s.state == StateStart {
			return ReplyNeedHelo, ActionNone
		}
		if s.state != StateGreeted {
			return ReplyBadSequence, ActionNone
		}
		if s.cfg.CheckMail != nil {
			if r := s.cfg.CheckMail(string(cmd.Addr)); r != nil {
				return *r, ActionNone
			}
		}
		s.sender = append(s.sender[:0], cmd.Addr...)
		s.senderSet = true
		if v := ParamValue(cmd.Params, "XTRACE"); v != nil {
			// By-value capture of the propagated trace context; a
			// malformed value degrades to "not traced", never an error.
			s.xtrace, _ = trace.ParseContext(v)
		}
		s.state = StateMail
		return ReplyOK, ActionNone
	case VerbRCPT:
		if s.state != StateMail && s.state != StateRcpt {
			return ReplyBadSequence, ActionNone
		}
		if s.nrcpts >= s.cfg.MaxRcpts {
			return ReplyTooManyRcpts, ActionNone
		}
		if !s.validRcpt(cmd.Addr) {
			// "550 User unknown" — the bounce of §4.1. State is
			// unchanged; the client may try other recipients.
			s.rejectedRcpts++
			return ReplyUserUnknown, ActionNone
		}
		pos, dup := s.rcptIdx.lookup(s.rcptBufs[:s.nrcpts], cmd.Addr)
		if dup {
			// Accepted duplicate collapses silently, as postfix does.
			return ReplyOK, ActionNone
		}
		if s.cfg.CheckRcpt != nil {
			if r := s.cfg.CheckRcpt(string(s.sender), string(cmd.Addr)); r != nil {
				return *r, ActionNone
			}
		}
		s.appendRcpt(pos, cmd.Addr)
		s.state = StateRcpt
		return ReplyOK, ActionNone
	case VerbDATA:
		if s.state == StateMail {
			// MAIL but no accepted RCPT.
			return ReplyNoValidRcpts, ActionNone
		}
		if s.state != StateRcpt {
			return ReplyBadSequence, ActionNone
		}
		return ReplyStartData, ActionData
	default:
		return ReplyUnknownCommand, ActionNone
	}
}

// validRcpt runs the recipient validator, preferring the byte form.
func (s *Session) validRcpt(addr []byte) bool {
	if s.cfg.ValidateRcptBytes != nil {
		return s.cfg.ValidateRcptBytes(addr)
	}
	if s.cfg.ValidateRcpt != nil {
		return s.cfg.ValidateRcpt(string(addr))
	}
	return true
}

// appendRcpt stores addr in the next recipient slot (reusing its buffer)
// and records it in the duplicate index at the probed position.
func (s *Session) appendRcpt(pos int, addr []byte) {
	if s.nrcpts < len(s.rcptBufs) {
		s.rcptBufs[s.nrcpts] = append(s.rcptBufs[s.nrcpts][:0], addr...)
	} else {
		s.rcptBufs = append(s.rcptBufs, append([]byte(nil), addr...))
	}
	s.nrcpts++
	s.rcptIdx.insert(pos, s.nrcpts) // 1-based slot id
}

// FinishData completes the DATA transaction with the decoded body and
// returns the envelope plus the reply to send. The session returns to the
// greeted state, ready for the next MAIL (postfix allows pipelined
// transactions on one connection). The Envelope's strings are fresh
// copies — this is the one deliberately allocating step, because the
// queue keeps the envelope past the session's lifetime.
func (s *Session) FinishData(body []byte) (Envelope, Reply) {
	env := Envelope{
		Helo:   string(s.helo),
		Sender: string(s.sender),
		Rcpts:  s.Rcpts(),
		Data:   body,
		Trace:  s.xtrace,
	}
	s.mailsDone++
	s.resetMail()
	s.state = StateGreeted
	return env, ReplyOKQueued
}

// AbortData reports a failed body read (oversize) and resets the
// transaction.
func (s *Session) AbortData() Reply {
	s.resetMail()
	s.state = StateGreeted
	return ReplyTooBig
}

func (s *Session) resetMail() {
	s.sender = s.sender[:0]
	s.senderSet = false
	s.nrcpts = 0
	s.rcptIdx.clear()
	s.xtrace = trace.Context{}
}

// ---------------------------------------------------------------------------
// Duplicate-recipient index.

// rcptIndex is a small open-addressed hash index over the session's
// accepted-recipient slots, keyed by the ASCII-case-folded address. It
// replaces the old O(n²) EqualFold scan: a mailbomb pushing thousands of
// RCPTs into a generously configured session now costs O(1) per command
// instead of a quadratic CPU burn before any trust decision. Folding is
// ASCII-only (addresses are validated to be control-free single-@
// tokens); exotic Unicode case pairs are treated as distinct recipients.
type rcptIndex struct {
	// tab holds 1-based recipient slot ids; 0 is empty. Sized to a power
	// of two at least 2× MaxRcpts, allocated once and reused.
	tab []int32
}

func (ri *rcptIndex) clear() {
	for i := range ri.tab {
		ri.tab[i] = 0
	}
}

// ensure sizes the table for capacity n.
func (ri *rcptIndex) ensure(n int) {
	want := 16
	for want < 2*n {
		want *= 2
	}
	if len(ri.tab) < want {
		ri.tab = make([]int32, want)
	}
}

// lookup probes for addr among the populated slots. It returns the probe
// position for a later insert and whether the address is already
// present.
func (ri *rcptIndex) lookup(slots [][]byte, addr []byte) (pos int, found bool) {
	ri.ensure(cap(slots) + 1)
	mask := uint32(len(ri.tab) - 1)
	h := foldHash(addr)
	for i := h & mask; ; i = (i + 1) & mask {
		id := ri.tab[i]
		if id == 0 {
			return int(i), false
		}
		if equalFoldBytes(slots[id-1], addr) {
			return int(i), true
		}
	}
}

// insert records slot id (1-based) at the position lookup returned.
func (ri *rcptIndex) insert(pos, id int) { ri.tab[pos] = int32(id) }

// foldHash is FNV-1a over the ASCII-case-folded bytes of b.
func foldHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		if 'A' <= c && c <= 'Z' {
			c |= 0x20
		}
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// equalFoldBytes compares two byte slices ASCII-case-insensitively.
func equalFoldBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca |= 0x20
		}
		if 'A' <= cb && cb <= 'Z' {
			cb |= 0x20
		}
		if ca != cb {
			return false
		}
	}
	return true
}
