package smtp

import (
	"errors"
	"strings"
)

// State is the SMTP session state.
type State int

// Session states.
const (
	// StateStart awaits HELO/EHLO.
	StateStart State = iota + 1
	// StateGreeted awaits MAIL FROM.
	StateGreeted
	// StateMail has a sender and awaits RCPT TO.
	StateMail
	// StateRcpt has at least one accepted recipient; DATA is allowed.
	StateRcpt
	// StateQuit is terminal.
	StateQuit
)

// Action tells the connection driver what to do after a command's reply
// has been sent.
type Action int

// Actions returned by Session.Command.
const (
	// ActionNone continues reading commands.
	ActionNone Action = iota + 1
	// ActionData switches to reading the dot-terminated message body;
	// pass it to Session.FinishData.
	ActionData
	// ActionQuit closes the connection after the reply.
	ActionQuit
)

// Config parameterizes a session. The zero value works for tests; servers
// set the hostname and the recipient validator (the access-database hook
// smtpd queries, §2).
type Config struct {
	// Hostname appears in the banner and HELO reply.
	Hostname string
	// ValidateRcpt reports whether a recipient mailbox exists. nil
	// accepts everything.
	ValidateRcpt func(addr string) bool
	// CheckMail, if non-nil, is the policy hook for MAIL FROM: a non-nil
	// reply (e.g. a 450 rate-limit tempfail) overrides acceptance and
	// leaves the session awaiting another MAIL.
	CheckMail func(sender string) *Reply
	// CheckRcpt, if non-nil, is the policy hook for recipients that
	// passed ValidateRcpt: a non-nil reply (e.g. a greylist 450)
	// overrides acceptance without recording the recipient, so the
	// hybrid front end keeps the connection un-trusted.
	CheckRcpt func(sender, rcpt string) *Reply
	// MaxRcpts caps accepted recipients per mail (0 = postfix default 50).
	MaxRcpts int
	// MaxMessageBytes caps the DATA payload (0 = MaxMessageBytes).
	MaxMessageBytes int
}

// Envelope is one completed mail transaction.
type Envelope struct {
	Helo   string
	Sender string
	Rcpts  []string
	Data   []byte
}

// Session is the per-connection SMTP state machine. Both architectures
// drive the same machine: the vanilla server runs it inside a worker for
// the whole dialog, the hybrid master runs it in the event loop until the
// first valid RCPT and then hands it to a worker (§5.3 transfers exactly
// the state this struct holds: client identity, sender, recipients).
type Session struct {
	cfg   Config
	state State

	helo   string
	sender string
	// senderSet distinguishes MAIL FROM:<> (bounce sender) from no MAIL.
	senderSet bool
	rcpts     []string

	rejectedRcpts int
	mailsDone     int
}

// NewSession returns a session awaiting HELO.
func NewSession(cfg Config) *Session {
	if cfg.Hostname == "" {
		cfg.Hostname = "mail.example.org"
	}
	if cfg.MaxRcpts == 0 {
		cfg.MaxRcpts = 50
	}
	if cfg.MaxMessageBytes == 0 {
		cfg.MaxMessageBytes = MaxMessageBytes
	}
	return &Session{cfg: cfg, state: StateStart}
}

// Greeting returns the 220 banner to send on accept.
func (s *Session) Greeting() Reply { return Banner(s.cfg.Hostname) }

// State returns the current protocol state.
func (s *Session) State() State { return s.state }

// Helo returns the client's HELO/EHLO name.
func (s *Session) Helo() string { return s.helo }

// Sender returns the MAIL FROM address ("" for the null sender).
func (s *Session) Sender() string { return s.sender }

// Rcpts returns the accepted recipients so far.
func (s *Session) Rcpts() []string { return append([]string(nil), s.rcpts...) }

// HasValidRcpt reports whether at least one recipient has been accepted —
// the fork-after-trust delegation trigger (§5.1: "if even a single
// recipient address is confirmed to be valid, the master process
// delegates the connection").
func (s *Session) HasValidRcpt() bool { return len(s.rcpts) > 0 }

// RejectedRcpts returns the number of 550-rejected recipients — the
// bounce signal of §4.1.
func (s *Session) RejectedRcpts() int { return s.rejectedRcpts }

// MailsCompleted returns the number of completed DATA transactions.
func (s *Session) MailsCompleted() int { return s.mailsDone }

// MaxMessageBytes returns the configured DATA cap for Conn.ReadData.
func (s *Session) MaxMessageBytes() int { return s.cfg.MaxMessageBytes }

// Command feeds one raw command line to the state machine and returns the
// reply to send plus the driver action.
func (s *Session) Command(line string) (Reply, Action) {
	if s.state == StateQuit {
		return ReplyBadSequence, ActionQuit
	}
	cmd, err := ParseCommand(line)
	if err != nil {
		var unknownErr *ErrUnknownVerb
		if errors.As(err, &unknownErr) {
			return ReplyUnknownCommand, ActionNone
		}
		return ReplySyntax, ActionNone
	}
	switch cmd.Verb {
	case VerbQUIT:
		s.state = StateQuit
		return ReplyBye, ActionQuit
	case VerbNOOP:
		return ReplyOK, ActionNone
	case VerbRSET:
		s.resetMail()
		if s.state != StateStart {
			s.state = StateGreeted
		}
		return ReplyOK, ActionNone
	case VerbVRFY:
		// Postfix answers 252 without disclosing mailbox existence;
		// mirroring that avoids turning VRFY into a harvesting oracle.
		return Reply{252, "Cannot VRFY user, but will accept message and attempt delivery"}, ActionNone
	case VerbHELO, VerbEHLO:
		s.helo = cmd.Arg
		s.resetMail()
		s.state = StateGreeted
		return HeloReply(s.cfg.Hostname), ActionNone
	case VerbMAIL:
		if s.state == StateStart {
			return ReplyNeedHelo, ActionNone
		}
		if s.state != StateGreeted {
			return ReplyBadSequence, ActionNone
		}
		if s.cfg.CheckMail != nil {
			if r := s.cfg.CheckMail(cmd.Addr); r != nil {
				return *r, ActionNone
			}
		}
		s.sender = cmd.Addr
		s.senderSet = true
		s.state = StateMail
		return ReplyOK, ActionNone
	case VerbRCPT:
		if s.state != StateMail && s.state != StateRcpt {
			return ReplyBadSequence, ActionNone
		}
		if len(s.rcpts) >= s.cfg.MaxRcpts {
			return ReplyTooManyRcpts, ActionNone
		}
		if s.cfg.ValidateRcpt != nil && !s.cfg.ValidateRcpt(cmd.Addr) {
			// "550 User unknown" — the bounce of §4.1. State is
			// unchanged; the client may try other recipients.
			s.rejectedRcpts++
			return ReplyUserUnknown, ActionNone
		}
		if s.hasRcpt(cmd.Addr) {
			// Accepted duplicate collapses silently, as postfix does.
			return ReplyOK, ActionNone
		}
		if s.cfg.CheckRcpt != nil {
			if r := s.cfg.CheckRcpt(s.sender, cmd.Addr); r != nil {
				return *r, ActionNone
			}
		}
		s.rcpts = append(s.rcpts, cmd.Addr)
		s.state = StateRcpt
		return ReplyOK, ActionNone
	case VerbDATA:
		if s.state == StateMail {
			// MAIL but no accepted RCPT.
			return Reply{554, "No valid recipients"}, ActionNone
		}
		if s.state != StateRcpt {
			return ReplyBadSequence, ActionNone
		}
		return ReplyStartData, ActionData
	default:
		return ReplyUnknownCommand, ActionNone
	}
}

// FinishData completes the DATA transaction with the decoded body and
// returns the envelope plus the reply to send. The session returns to the
// greeted state, ready for the next MAIL (postfix allows pipelined
// transactions on one connection).
func (s *Session) FinishData(body []byte) (Envelope, Reply) {
	env := Envelope{
		Helo:   s.helo,
		Sender: s.sender,
		Rcpts:  append([]string(nil), s.rcpts...),
		Data:   body,
	}
	s.mailsDone++
	s.resetMail()
	s.state = StateGreeted
	return env, Reply{250, "Ok: queued"}
}

// AbortData reports a failed body read (oversize) and resets the
// transaction.
func (s *Session) AbortData() Reply {
	s.resetMail()
	s.state = StateGreeted
	return ReplyTooBig
}

func (s *Session) resetMail() {
	s.sender = ""
	s.senderSet = false
	s.rcpts = nil
}

func (s *Session) hasRcpt(addr string) bool {
	for _, r := range s.rcpts {
		if strings.EqualFold(r, addr) {
			return true
		}
	}
	return false
}
