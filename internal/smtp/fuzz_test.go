package smtp

import (
	"strings"
	"testing"
)

// FuzzParseCommand hammers the command parser with arbitrary client
// input — the first untrusted bytes the server touches — and checks its
// invariants: no panic, deterministic output, and any accepted MAIL/RCPT
// address is well-formed.
func FuzzParseCommand(f *testing.F) {
	for _, seed := range []string{
		"HELO client.example",
		"EHLO [127.0.0.1]",
		"MAIL FROM:<a@b.c>",
		"MAIL FROM:<> SIZE=1000",
		"mail from:<USER@Example.COM>",
		"RCPT TO:<u@d.example>",
		"RCPT TO:<@relay.example:u@d.example>",
		"RCPT TO:<>",
		"VRFY <root@localhost>",
		"DATA",
		"RSET ",
		"NOOP",
		"QUIT",
		"MAIL FROM:a@b.c",
		"RCPT TO:<a@>",
		"MAIL FROM:<a b@c>",
		"BDAT 86 LAST",
		"",
		"   ",
		"MAIL FROM:<\x00@d>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		cmd, err := ParseCommand(line)
		cmd2, err2 := ParseCommand(line)
		if cmd != cmd2 || (err == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic parse of %q", line)
		}
		if err != nil {
			return
		}
		switch cmd.Verb {
		case VerbMAIL:
			if cmd.Addr != "" {
				if verr := ValidateAddress(cmd.Addr); verr != nil {
					t.Fatalf("MAIL accepted invalid address %q from %q: %v", cmd.Addr, line, verr)
				}
			}
		case VerbRCPT:
			if cmd.Addr == "" {
				t.Fatalf("RCPT accepted the null path from %q", line)
			}
			if verr := ValidateAddress(cmd.Addr); verr != nil {
				t.Fatalf("RCPT accepted invalid address %q from %q: %v", cmd.Addr, line, verr)
			}
		case VerbHELO, VerbEHLO, VerbVRFY:
			if cmd.Arg == "" {
				t.Fatalf("%s accepted an empty argument from %q", cmd.Verb, line)
			}
		}
	})
}

// FuzzParsePath targets the MAIL/RCPT path parser directly: any address
// it returns must be empty (the null reverse-path) or valid, and never
// contain angle brackets or whitespace.
func FuzzParsePath(f *testing.F) {
	for _, seed := range []string{
		"FROM:<a@b.c>",
		"FROM:<>",
		"FROM:<a@b.c> SIZE=100 BODY=8BITMIME",
		"FROM: <spaced@out.example>",
		"TO:<@r1.example,@r2.example:deep@route.example>",
		"TO:<\"quoted local\"@d.example>",
		"TO:<a@b@c>",
		"FROM:",
		"FROM:<unclosed@d",
		"from:<lower@case.example>",
	} {
		f.Add(seed, "FROM")
		f.Add(seed, "TO")
	}
	f.Fuzz(func(t *testing.T, arg, keyword string) {
		if keyword != "FROM" && keyword != "TO" {
			// parsePath is only ever called with these two keywords.
			keyword = "FROM"
		}
		addr, err := parsePath(arg, keyword)
		if err != nil {
			if addr != "" {
				t.Fatalf("parsePath(%q) returned %q alongside error %v", arg, addr, err)
			}
			return
		}
		if addr == "" {
			return // the null reverse-path
		}
		if verr := ValidateAddress(addr); verr != nil {
			t.Fatalf("parsePath(%q) returned invalid address %q: %v", arg, addr, verr)
		}
		if strings.ContainsAny(addr, "<> \t") {
			t.Fatalf("parsePath(%q) leaked path syntax into %q", arg, addr)
		}
	})
}
