package smtp

import (
	"bytes"
	"testing"
)

// parseSeeds is the shared corpus for the parser fuzz targets: the
// protocol lines the workloads generate plus the malformed shapes the
// parser must reject.
var parseSeeds = []string{
	"HELO client.example",
	"EHLO [127.0.0.1]",
	"MAIL FROM:<a@b.c>",
	"MAIL FROM:<> SIZE=1000",
	"mail from:<USER@Example.COM>",
	"RCPT TO:<u@d.example>",
	"RCPT TO:<@relay.example:u@d.example>",
	"RCPT TO:<>",
	"VRFY <root@localhost>",
	"DATA",
	"RSET ",
	"NOOP",
	"QUIT",
	"MAIL FROM:a@b.c",
	"RCPT TO:<a@>",
	"MAIL FROM:<a b@c>",
	"BDAT 86 LAST",
	"",
	"   ",
	"MAIL FROM:<\x00@d>",
	"MAIL FROM:<a@b.c>\tSIZE=1",
	"rCpT tO:<MiXeD@CaSe.Org>",
	"MAIL ſrom:<a@b.c>", // long s: ToUpper("ſ") == "S"
	"HELO é.example",
}

// FuzzParseCommand hammers the command parser with arbitrary client
// input — the first untrusted bytes the server touches — and checks its
// invariants: no panic, deterministic output, and any accepted MAIL/RCPT
// address is well-formed.
func FuzzParseCommand(f *testing.F) {
	for _, seed := range parseSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		line := []byte(s)
		cmd, err := ParseCommand(line)
		cmd2, err2 := ParseCommand(line)
		if cmd.Verb != cmd2.Verb || !bytes.Equal(cmd.Arg, cmd2.Arg) ||
			!bytes.Equal(cmd.Addr, cmd2.Addr) || (err == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic parse of %q", line)
		}
		if err != nil {
			return
		}
		switch cmd.Verb {
		case VerbMAIL:
			if len(cmd.Addr) > 0 {
				if verr := ValidateAddress(string(cmd.Addr)); verr != nil {
					t.Fatalf("MAIL accepted invalid address %q from %q: %v", cmd.Addr, line, verr)
				}
			}
		case VerbRCPT:
			if len(cmd.Addr) == 0 {
				t.Fatalf("RCPT accepted the null path from %q", line)
			}
			if verr := ValidateAddress(string(cmd.Addr)); verr != nil {
				t.Fatalf("RCPT accepted invalid address %q from %q: %v", cmd.Addr, line, verr)
			}
		case VerbHELO, VerbEHLO, VerbVRFY:
			if len(cmd.Arg) == 0 {
				t.Fatalf("%s accepted an empty argument from %q", cmd.Verb, line)
			}
		}
	})
}

// FuzzParseEquivalence is the differential target for the byte-parser
// rewrite: on every input, the zero-allocation parser must agree with the
// pre-rewrite string parser (kept verbatim in oracle_test.go) on
// accept/reject, on the error class, and on the parsed argument and
// address text. The one deliberate divergence is excluded structurally:
// the byte parser leaves Command.Verb empty on unknown verbs instead of
// echoing the uppercased text, so verbs are only compared on success,
// where both parsers recognized the command.
func FuzzParseEquivalence(f *testing.F) {
	for _, seed := range parseSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, gotErr := ParseCommand([]byte(s))
		want, wantErr := oracleParseCommand(s)
		if errClass(gotErr) != errClass(wantErr) {
			t.Fatalf("ParseCommand(%q) err = %v, oracle err = %v", s, gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}
		if got.Verb != want.Verb {
			t.Fatalf("ParseCommand(%q) verb = %q, oracle = %q", s, got.Verb, want.Verb)
		}
		if string(got.Arg) != want.Arg {
			t.Fatalf("ParseCommand(%q) arg = %q, oracle = %q", s, got.Arg, want.Arg)
		}
		if string(got.Addr) != want.Addr {
			t.Fatalf("ParseCommand(%q) addr = %q, oracle = %q", s, got.Addr, want.Addr)
		}
	})
}

// FuzzParsePath targets the MAIL/RCPT path parser directly: any address
// it returns must be empty (the null reverse-path) or valid, and never
// contain angle brackets or whitespace.
func FuzzParsePath(f *testing.F) {
	for _, seed := range []string{
		"FROM:<a@b.c>",
		"FROM:<>",
		"FROM:<a@b.c> SIZE=100 BODY=8BITMIME",
		"FROM: <spaced@out.example>",
		"TO:<@r1.example,@r2.example:deep@route.example>",
		"TO:<\"quoted local\"@d.example>",
		"TO:<a@b@c>",
		"FROM:",
		"FROM:<unclosed@d",
		"from:<lower@case.example>",
	} {
		f.Add(seed, "FROM")
		f.Add(seed, "TO")
	}
	f.Fuzz(func(t *testing.T, arg, keyword string) {
		if keyword != "FROM" && keyword != "TO" {
			// parsePath is only ever called with these two keywords.
			keyword = "FROM"
		}
		addr, params, err := parsePath([]byte(arg), keyword)
		if err != nil {
			if len(addr) != 0 {
				t.Fatalf("parsePath(%q) returned %q alongside error %v", arg, addr, err)
			}
			return
		}
		if bytes.IndexByte(params, '<') == 0 {
			t.Fatalf("parsePath(%q) leaked a path into params %q", arg, params)
		}
		if len(addr) == 0 {
			return // the null reverse-path
		}
		if verr := ValidateAddress(string(addr)); verr != nil {
			t.Fatalf("parsePath(%q) returned invalid address %q: %v", arg, addr, verr)
		}
		if bytes.ContainsAny(addr, "<> \t") {
			t.Fatalf("parsePath(%q) leaked path syntax into %q", arg, addr)
		}
	})
}
