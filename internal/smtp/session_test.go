package smtp

import (
	"strings"
	"testing"
)

func newTestSession() *Session {
	return NewSession(Config{
		Hostname: "mx.test",
		ValidateRcpt: func(addr string) bool {
			return strings.HasSuffix(strings.ToLower(addr), "@valid.test")
		},
		MaxRcpts: 5,
	})
}

// drive feeds commands asserting expected codes; returns the session.
func drive(t *testing.T, s *Session, steps []struct {
	cmd  string
	code int
}) {
	t.Helper()
	for _, st := range steps {
		r, _ := s.Command(st.cmd)
		if r.Code != st.code {
			t.Fatalf("Command(%q) = %d %s, want %d", st.cmd, r.Code, r.Text, st.code)
		}
	}
}

func TestHappyPathTransaction(t *testing.T) {
	s := newTestSession()
	if g := s.Greeting(); g.Code != 220 || !strings.Contains(g.Text, "mx.test") {
		t.Fatalf("greeting = %+v", g)
	}
	drive(t, s, []struct {
		cmd  string
		code int
	}{
		{"HELO client.test", 250},
		{"MAIL FROM:<sender@remote.test>", 250},
		{"RCPT TO:<alice@valid.test>", 250},
		{"RCPT TO:<bob@valid.test>", 250},
	})
	r, action := s.Command("DATA")
	if r.Code != 354 || action != ActionData {
		t.Fatalf("DATA = %d/%v", r.Code, action)
	}
	env, reply := s.FinishData([]byte("Subject: x\r\n\r\nbody"))
	if reply.Code != 250 {
		t.Fatalf("finish reply = %+v", reply)
	}
	if env.Sender != "sender@remote.test" || len(env.Rcpts) != 2 || env.Helo != "client.test" {
		t.Fatalf("envelope = %+v", env)
	}
	if s.MailsCompleted() != 1 {
		t.Fatal("mail count not incremented")
	}
	// Connection reusable for the next transaction.
	drive(t, s, []struct {
		cmd  string
		code int
	}{
		{"MAIL FROM:<other@remote.test>", 250},
		{"RCPT TO:<alice@valid.test>", 250},
	})
	r, action = s.Command("QUIT")
	if r.Code != 221 || action != ActionQuit {
		t.Fatalf("QUIT = %d/%v", r.Code, action)
	}
}

func TestBounceRcptGets550(t *testing.T) {
	s := newTestSession()
	s.Command("HELO h")
	s.Command("MAIL FROM:<spam@bot.test>")
	r, action := s.Command("RCPT TO:<guessed@valid.test.invalid>")
	if r.Code != 550 || action != ActionNone {
		t.Fatalf("bounce rcpt = %d/%v, want 550", r.Code, action)
	}
	if s.HasValidRcpt() {
		t.Fatal("rejected rcpt should not mark session trusted")
	}
	if s.RejectedRcpts() != 1 {
		t.Fatalf("rejected count = %d", s.RejectedRcpts())
	}
	// All recipients invalid: DATA refused.
	r, _ = s.Command("DATA")
	if r.Code != 554 {
		t.Fatalf("DATA after only bounces = %d, want 554", r.Code)
	}
	// A later valid RCPT rescues the transaction (mixed mail, §4.1).
	r, _ = s.Command("RCPT TO:<real@valid.test>")
	if r.Code != 250 || !s.HasValidRcpt() {
		t.Fatalf("valid rcpt after bounce = %d", r.Code)
	}
}

func TestSequenceEnforcement(t *testing.T) {
	s := newTestSession()
	drive(t, s, []struct {
		cmd  string
		code int
	}{
		{"MAIL FROM:<a@b.test>", 503}, // before HELO
		{"RCPT TO:<a@valid.test>", 503},
		{"DATA", 503},
		{"HELO h", 250},
		{"RCPT TO:<a@valid.test>", 503}, // before MAIL
		{"DATA", 503},
		{"MAIL FROM:<a@b.test>", 250},
		{"MAIL FROM:<a@b.test>", 503}, // nested MAIL
	})
}

func TestRsetClearsTransaction(t *testing.T) {
	s := newTestSession()
	s.Command("HELO h")
	s.Command("MAIL FROM:<a@b.test>")
	s.Command("RCPT TO:<a@valid.test>")
	r, _ := s.Command("RSET")
	if r.Code != 250 {
		t.Fatalf("RSET = %d", r.Code)
	}
	if s.HasValidRcpt() || s.Sender() != "" {
		t.Fatal("RSET did not clear state")
	}
	// MAIL allowed again after RSET.
	r, _ = s.Command("MAIL FROM:<c@d.test>")
	if r.Code != 250 {
		t.Fatalf("MAIL after RSET = %d", r.Code)
	}
}

func TestHeloResetsMail(t *testing.T) {
	s := newTestSession()
	s.Command("HELO one")
	s.Command("MAIL FROM:<a@b.test>")
	s.Command("HELO two")
	if s.Helo() != "two" || s.Sender() != "" {
		t.Fatal("repeated HELO should reset the transaction")
	}
}

func TestMaxRcptsEnforced(t *testing.T) {
	s := newTestSession()
	s.Command("HELO h")
	s.Command("MAIL FROM:<a@b.test>")
	for i := 0; i < 5; i++ {
		r, _ := s.Command("RCPT TO:<u" + string(rune('a'+i)) + "@valid.test>")
		if r.Code != 250 {
			t.Fatalf("rcpt %d = %d", i, r.Code)
		}
	}
	r, _ := s.Command("RCPT TO:<overflow@valid.test>")
	if r.Code != 452 {
		t.Fatalf("over-limit rcpt = %d, want 452", r.Code)
	}
}

func TestDuplicateRcptCollapses(t *testing.T) {
	s := newTestSession()
	s.Command("HELO h")
	s.Command("MAIL FROM:<a@b.test>")
	s.Command("RCPT TO:<u@valid.test>")
	r, _ := s.Command("RCPT TO:<U@VALID.TEST>")
	if r.Code != 250 {
		t.Fatalf("duplicate rcpt = %d", r.Code)
	}
	if len(s.Rcpts()) != 1 {
		t.Fatalf("rcpts = %v", s.Rcpts())
	}
}

func TestNullSenderAccepted(t *testing.T) {
	// Bounce notifications use MAIL FROM:<>.
	s := newTestSession()
	s.Command("HELO h")
	r, _ := s.Command("MAIL FROM:<>")
	if r.Code != 250 {
		t.Fatalf("null sender = %d", r.Code)
	}
	if s.Sender() != "" {
		t.Fatalf("sender = %q", s.Sender())
	}
}

func TestUnknownAndSyntaxReplies(t *testing.T) {
	s := newTestSession()
	r, _ := s.Command("XYZZY")
	if r.Code != 500 {
		t.Fatalf("unknown verb = %d", r.Code)
	}
	r, _ = s.Command("MAIL FROM:broken")
	if r.Code != 501 {
		t.Fatalf("syntax error = %d", r.Code)
	}
	r, _ = s.Command("NOOP")
	if r.Code != 250 {
		t.Fatalf("NOOP = %d", r.Code)
	}
	r, _ = s.Command("VRFY someone")
	if r.Code != 252 {
		t.Fatalf("VRFY = %d, want 252 (non-disclosing)", r.Code)
	}
}

func TestAbortData(t *testing.T) {
	s := newTestSession()
	s.Command("HELO h")
	s.Command("MAIL FROM:<a@b.test>")
	s.Command("RCPT TO:<u@valid.test>")
	s.Command("DATA")
	r := s.AbortData()
	if r.Code != 552 {
		t.Fatalf("abort = %d", r.Code)
	}
	if s.HasValidRcpt() {
		t.Fatal("abort should reset transaction")
	}
	// Session continues.
	r, _ = s.Command("MAIL FROM:<x@y.test>")
	if r.Code != 250 {
		t.Fatalf("MAIL after abort = %d", r.Code)
	}
}

func TestCommandAfterQuit(t *testing.T) {
	s := newTestSession()
	s.Command("QUIT")
	r, action := s.Command("NOOP")
	if r.Code != 503 || action != ActionQuit {
		t.Fatalf("post-QUIT = %d/%v", r.Code, action)
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := NewSession(Config{})
	if s.cfg.Hostname == "" || s.cfg.MaxRcpts != 50 || s.cfg.MaxMessageBytes != MaxMessageBytes {
		t.Fatalf("defaults = %+v", s.cfg)
	}
	if s.MaxMessageBytes() != MaxMessageBytes {
		t.Fatal("MaxMessageBytes accessor wrong")
	}
	// nil validator accepts anything.
	s.Command("HELO h")
	s.Command("MAIL FROM:<a@b.c>")
	r, _ := s.Command("RCPT TO:<anyone@anywhere.example>")
	if r.Code != 250 {
		t.Fatalf("nil validator rcpt = %d", r.Code)
	}
}
