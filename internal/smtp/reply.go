// Package smtp implements the SMTP protocol layer shared by both mail
// server architectures: reply formatting, command parsing, a line/dot
// codec with limits, the per-connection session state machine, and a
// client for the load generators.
//
// The subset implemented is the one the paper's workloads exercise —
// HELO/EHLO, MAIL, RCPT (multi-recipient), DATA with dot-stuffing, RSET,
// NOOP, VRFY, QUIT — with the postfix-compatible reply codes, notably
// "550 User unknown" for the bounce mails of §4.1.
package smtp

import (
	"fmt"
	"strings"
)

// Reply is one SMTP server response. Text may contain newlines: each
// becomes a continuation line on the wire ("250-..."), which is how
// the EHLO extension listing is carried while Reply stays a comparable
// value type usable as a map key.
type Reply struct {
	Code int
	Text string
}

// String renders the reply as a single-line response without CRLF.
func (r Reply) String() string { return fmt.Sprintf("%d %s", r.Code, r.Text) }

// IsPositive reports whether the reply is a 2xx or 3xx success code.
func (r Reply) IsPositive() bool { return r.Code >= 200 && r.Code < 400 }

// Standard replies used by the server. Texts follow postfix's wording
// where the paper quotes it ("550 User unknown").
var (
	ReplyBye            = Reply{221, "Bye"}
	ReplyOK             = Reply{250, "Ok"}
	ReplyOKQueued       = Reply{250, "Ok: queued"}
	ReplyVrfy           = Reply{252, "Cannot VRFY user, but will accept message and attempt delivery"}
	ReplyStartData      = Reply{354, "End data with <CR><LF>.<CR><LF>"}
	ReplyShutdown       = Reply{421, "Service not available, closing transmission channel"}
	ReplyTooManyRcpts   = Reply{452, "Too many recipients"}
	ReplyInsufficient   = Reply{452, "Insufficient system storage"}
	ReplyLineTooLong    = Reply{500, "Line too long"}
	ReplyUnknownCommand = Reply{500, "Command unrecognized"}
	ReplySyntax         = Reply{501, "Syntax error in parameters or arguments"}
	ReplyBadSequence    = Reply{503, "Bad sequence of commands"}
	ReplyNeedHelo       = Reply{503, "Send HELO/EHLO first"}
	ReplyUserUnknown    = Reply{550, "User unknown"}
	ReplyNoValidRcpts   = Reply{554, "No valid recipients"}
	ReplyBlacklisted    = Reply{554, "Service unavailable; client host blocked using DNSBL"}
	ReplyTooBig         = Reply{552, "Message size exceeds fixed limit"}
)

// replyWires holds the preformatted wire form ("250 Ok\r\n") of every
// canonical reply, so the hot reply path is a map probe plus one
// buffered write — no per-reply formatting, no allocation. Replies not
// in the table (dynamic policy texts, banners) are formatted into the
// connection's scratch buffer instead, which is still allocation-free
// after warmup.
var replyWires = map[Reply][]byte{}

func init() {
	for _, r := range []Reply{
		ReplyBye, ReplyOK, ReplyOKQueued, ReplyVrfy, ReplyStartData,
		ReplyShutdown, ReplyTooManyRcpts, ReplyInsufficient,
		ReplyLineTooLong, ReplyUnknownCommand, ReplySyntax,
		ReplyBadSequence, ReplyNeedHelo, ReplyUserUnknown,
		ReplyNoValidRcpts, ReplyBlacklisted, ReplyTooBig,
	} {
		replyWires[r] = appendReply(nil, r)
	}
}

// appendReply appends the wire form of r to dst without fmt. Newlines
// in the text become RFC 5321 continuation lines ("250-first",
// "250 last"); the common single-line reply pays one IndexByte.
func appendReply(dst []byte, r Reply) []byte {
	text := r.Text
	for {
		line := text
		i := strings.IndexByte(text, '\n')
		last := i < 0
		if !last {
			line, text = text[:i], text[i+1:]
		}
		dst = appendCode(dst, r.Code)
		if last {
			dst = append(dst, ' ')
		} else {
			dst = append(dst, '-')
		}
		dst = append(dst, line...)
		dst = append(dst, '\r', '\n')
		if last {
			return dst
		}
	}
}

// appendCode appends the 3-digit reply code without fmt.
func appendCode(dst []byte, code int) []byte {
	if code >= 100 && code <= 999 {
		return append(dst, byte('0'+code/100), byte('0'+code/10%10), byte('0'+code%10))
	}
	// Out-of-range codes never happen in practice; fall back to the
	// slow path rather than emit garbage digits.
	return append(dst, fmt.Sprintf("%d", code)...)
}

// Banner returns the 220 greeting for a hostname.
func Banner(hostname string) Reply {
	return Reply{220, hostname + " ESMTP ready"}
}

// HeloReply returns the 250 response to HELO.
func HeloReply(hostname string) Reply {
	return Reply{250, hostname}
}

// EhloReply returns the 250 response to EHLO advertising exts as ESMTP
// keywords, one continuation line each. With no extensions it matches
// HeloReply. Servers build this once and reuse it via Config.Ehlo, so
// the per-EHLO cost is the same preformatted write as every reply.
func EhloReply(hostname string, exts ...string) Reply {
	if len(exts) == 0 {
		return HeloReply(hostname)
	}
	return Reply{250, hostname + "\n" + strings.Join(exts, "\n")}
}
