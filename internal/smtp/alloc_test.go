package smtp

import (
	"bytes"
	"io"
	"testing"
)

// loopReader serves the same script forever without allocating — the
// read side of the steady-state dialog harness.
type loopReader struct {
	script []byte
	off    int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.script) {
		l.off = 0
	}
	n := copy(p, l.script[l.off:])
	l.off += n
	return n, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

type loopRW struct {
	*loopReader
	discard
}

// dialogScript is the pre-trust command mix the alloc gate and
// BenchmarkSMTPDialog both drive: greeting, sender, an accepted
// recipient, a case-variant duplicate, a rejected recipient (the §4.1
// bounce probe), an unknown verb, a syntax error, and a reset — every
// reply class the hot path produces, with no DATA (envelope
// materialization is the one deliberately allocating step).
const dialogScript = "HELO client.example\r\n" +
	"MAIL FROM:<probe@spam.example>\r\n" +
	"RCPT TO:<good@valid.example>\r\n" +
	"RCPT TO:<GOOD@VALID.EXAMPLE>\r\n" +
	"RCPT TO:<ghost@trap.example>\r\n" +
	"FROBNICATE\r\n" +
	"MAIL FROM:oops\r\n" +
	"RSET\r\n"

const dialogScriptCmds = 8

var validSuffix = []byte("@valid.example")

func dialogConfig() Config {
	return Config{
		Hostname: "mx.bench.example",
		ValidateRcptBytes: func(addr []byte) bool {
			return len(addr) >= len(validSuffix) &&
				equalFoldBytes(addr[len(addr)-len(validSuffix):], validSuffix)
		},
	}
}

// runDialogScript pushes one full script iteration through the conn and
// session, batching replies into one flush like the server's dialog loop.
func runDialogScript(tb testing.TB, c *Conn, sess *Session) {
	for i := 0; i < dialogScriptCmds; i++ {
		line, err := c.ReadLine()
		if err != nil {
			tb.Fatalf("ReadLine: %v", err)
		}
		reply, action := sess.CommandBytes(line)
		if action != ActionNone {
			tb.Fatalf("script produced action %v on %q", action, line)
		}
		if err := c.WriteReplyLazy(reply); err != nil {
			tb.Fatalf("WriteReplyLazy: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		tb.Fatalf("Flush: %v", err)
	}
}

// TestDialogZeroAllocPerCommand is the in-package form of the CI
// regression gate: after warmup, the full command dialog — read, parse,
// state machine, reply — costs zero heap allocations per command. This
// mirrors the 0-alloc smokes in internal/metrics and internal/eventlog.
func TestDialogZeroAllocPerCommand(t *testing.T) {
	rw := loopRW{loopReader: &loopReader{script: []byte(dialogScript)}}
	c := NewConn(rw)
	sess := NewSession(dialogConfig())
	for i := 0; i < 3; i++ {
		runDialogScript(t, c, sess) // warmup: grow buffers, size the rcpt index
	}
	allocs := testing.AllocsPerRun(200, func() {
		runDialogScript(t, c, sess)
	})
	if allocs != 0 {
		t.Fatalf("steady-state dialog allocates %.1f times per %d commands, want 0",
			allocs, dialogScriptCmds)
	}
}

// TestDialogScriptSemantics pins what the alloc harness actually
// exercises, so a silent parser regression can't turn the 0-alloc loop
// into a stream of errors that trivially allocates nothing.
func TestDialogScriptSemantics(t *testing.T) {
	rw := loopRW{loopReader: &loopReader{script: []byte(dialogScript)}}
	c := NewConn(rw)
	sess := NewSession(dialogConfig())
	wantReplies := []int{250, 250, 250, 250, 550, 500, 501, 250}
	for i, want := range wantReplies {
		line, err := c.ReadLine()
		if err != nil {
			t.Fatal(err)
		}
		reply, _ := sess.CommandBytes(line)
		if reply.Code != want {
			t.Fatalf("command %d (%q) = %d, want %d", i, line, reply.Code, want)
		}
		switch i {
		case 3:
			if got := sess.Rcpts(); len(got) != 1 {
				t.Fatalf("after duplicate RCPT, rcpts = %v, want 1", got)
			}
		case 4:
			if sess.RejectedRcpts() != 1 {
				t.Fatalf("rejected = %d, want 1", sess.RejectedRcpts())
			}
		}
	}
}

func TestConnPoolRoundTrip(t *testing.T) {
	in := bytes.NewBufferString("HELO a\r\n")
	c := AcquireConn(struct {
		io.Reader
		io.Writer
	}{in, discard{}})
	line, err := c.ReadLine()
	if err != nil || string(line) != "HELO a" {
		t.Fatalf("pooled ReadLine = %q, %v", line, err)
	}
	c.data = make([]byte, 0, maxPooledData+1)
	ReleaseConn(c)
	c2 := AcquireConn(struct {
		io.Reader
		io.Writer
	}{bytes.NewBufferString("x\r\n"), discard{}})
	if cap(c2.data) > maxPooledData {
		t.Fatalf("oversized data buffer (%d) survived the pool", cap(c2.data))
	}
	ReleaseConn(c2)
}

func TestSessionPoolResets(t *testing.T) {
	s := AcquireSession(Config{Hostname: "one.example"})
	s.Command("HELO a")
	s.Command("MAIL FROM:<x@y.z>")
	s.Command("RCPT TO:<u@v.w>")
	ReleaseSession(s)
	s2 := AcquireSession(Config{Hostname: "two.example"})
	if s2.State() != StateStart || s2.HasValidRcpt() || s2.Helo() != "" || s2.Sender() != "" {
		t.Fatalf("pooled session not reset: state=%v helo=%q sender=%q rcpts=%v",
			s2.State(), s2.Helo(), s2.Sender(), s2.Rcpts())
	}
	if s2.cfg.Hostname != "two.example" {
		t.Fatalf("pooled session kept old config: %q", s2.cfg.Hostname)
	}
	ReleaseSession(s2)
}
