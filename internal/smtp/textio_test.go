package smtp

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

type rwBuf struct {
	in  *bytes.Buffer
	out *bytes.Buffer
}

func (b *rwBuf) Read(p []byte) (int, error)  { return b.in.Read(p) }
func (b *rwBuf) Write(p []byte) (int, error) { return b.out.Write(p) }

func newRW(input string) (*Conn, *rwBuf) {
	b := &rwBuf{in: bytes.NewBufferString(input), out: &bytes.Buffer{}}
	return NewConn(b), b
}

func TestReadLineVariants(t *testing.T) {
	c, _ := newRW("HELO x\r\nMAIL\nQUIT")
	for _, want := range []string{"HELO x", "MAIL", "QUIT"} {
		got, err := c.ReadLine()
		if err != nil || string(got) != want {
			t.Fatalf("ReadLine = %q, %v; want %q", got, err, want)
		}
	}
}

func TestReadLineTooLong(t *testing.T) {
	c, _ := newRW(strings.Repeat("a", MaxLineLen+10) + "\r\nNEXT\r\n")
	if _, err := c.ReadLine(); err != ErrLineTooLong {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
}

func TestWriteReply(t *testing.T) {
	c, b := newRW("")
	if err := c.WriteReply(ReplyOK); err != nil {
		t.Fatal(err)
	}
	if got := b.out.String(); got != "250 Ok\r\n" {
		t.Fatalf("wire = %q", got)
	}
}

func TestWriteMultiReply(t *testing.T) {
	c, b := newRW("")
	c.WriteMultiReply(250, []string{"mx.test", "PIPELINING", "SIZE 1000"})
	want := "250-mx.test\r\n250-PIPELINING\r\n250 SIZE 1000\r\n"
	if got := b.out.String(); got != want {
		t.Fatalf("wire = %q, want %q", got, want)
	}
}

func TestReadReplyMultiline(t *testing.T) {
	c, _ := newRW("250-first\r\n250-second\r\n250 last\r\n")
	r, err := c.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != 250 || r.Text != "first\nsecond\nlast" {
		t.Fatalf("reply = %+v", r)
	}
}

func TestReadReplyMalformed(t *testing.T) {
	for _, in := range []string{"xx\r\n", "abc d\r\n"} {
		c, _ := newRW(in)
		if _, err := c.ReadReply(); err == nil {
			t.Errorf("ReadReply(%q) accepted", in)
		}
	}
}

func TestReadDataDotHandling(t *testing.T) {
	c, _ := newRW("line one\r\n..leading dot\r\n.\r\n")
	data, err := c.ReadData(0)
	if err != nil {
		t.Fatal(err)
	}
	want := "line one\r\n.leading dot\r\n"
	if string(data) != want {
		t.Fatalf("data = %q, want %q", data, want)
	}
}

func TestReadDataEmptyMessage(t *testing.T) {
	c, _ := newRW(".\r\n")
	data, err := c.ReadData(0)
	if err != nil || len(data) != 0 {
		t.Fatalf("empty data = %q, %v", data, err)
	}
}

func TestReadDataSizeLimit(t *testing.T) {
	body := strings.Repeat("x", 100) + "\r\n"
	c, _ := newRW(body + body + ".\r\nNEXT\r\n")
	if _, err := c.ReadData(50); err != ErrMessageTooBig {
		t.Fatalf("err = %v, want ErrMessageTooBig", err)
	}
	// The stream stays synchronized: the next line is readable.
	line, err := c.ReadLine()
	if err != nil || string(line) != "NEXT" {
		t.Fatalf("post-overflow line = %q, %v", line, err)
	}
}

func TestReadDataEOFMidBody(t *testing.T) {
	c, _ := newRW("no terminator")
	if _, err := c.ReadData(0); err == nil {
		t.Fatal("EOF mid-data accepted")
	}
}

func TestWriteDataStuffsDots(t *testing.T) {
	c, b := newRW("")
	if err := c.WriteData([]byte(".starts with dot\r\nplain\r\n")); err != nil {
		t.Fatal(err)
	}
	want := "..starts with dot\r\nplain\r\n.\r\n"
	if got := b.out.String(); got != want {
		t.Fatalf("wire = %q, want %q", got, want)
	}
}

func TestWriteDataEmpty(t *testing.T) {
	c, b := newRW("")
	c.WriteData(nil)
	if got := b.out.String(); got != ".\r\n" {
		t.Fatalf("wire = %q", got)
	}
}

func TestDataRoundTripProperty(t *testing.T) {
	// Property: WriteData then ReadData reproduces any line-structured
	// body, including dot lines.
	f := func(lines []string) bool {
		var body strings.Builder
		for _, l := range lines {
			l = strings.Map(func(r rune) rune {
				if r == '\r' || r == '\n' {
					return 'x'
				}
				return r
			}, l)
			body.WriteString(l)
			body.WriteString("\r\n")
		}
		in := body.String()

		sink := &rwBuf{in: &bytes.Buffer{}, out: &bytes.Buffer{}}
		w := NewConn(sink)
		if err := w.WriteData([]byte(in)); err != nil {
			return false
		}
		r, _ := newRW(sink.out.String())
		out, err := r.ReadData(0)
		if err != nil {
			return false
		}
		return string(out) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
