package smtp

// The pre-rewrite string-based command parser, kept verbatim (modulo
// renames) as the behavioral oracle for FuzzParseEquivalence: the
// zero-allocation byte parser must accept exactly what this one accepted,
// reject with the same error class, and produce the same argument and
// address text. Do not "improve" this file — its value is that it does
// not change.

import (
	"fmt"
	"strings"
)

type oracleCommand struct {
	Verb Verb
	Arg  string
	Addr string
}

type oracleErrSyntax struct{ Line string }

func (e *oracleErrSyntax) Error() string { return fmt.Sprintf("smtp: syntax error in %q", e.Line) }

type oracleErrUnknownVerb struct{ VerbText string }

func (e *oracleErrUnknownVerb) Error() string {
	return fmt.Sprintf("smtp: unknown command %q", e.VerbText)
}

func oracleParseCommand(line string) (oracleCommand, error) {
	trimmed := strings.TrimRight(line, " \t")
	verbText := trimmed
	arg := ""
	if i := strings.IndexByte(trimmed, ' '); i >= 0 {
		verbText, arg = trimmed[:i], strings.TrimSpace(trimmed[i+1:])
	}
	verb := Verb(strings.ToUpper(verbText))
	cmd := oracleCommand{Verb: verb, Arg: arg}
	switch verb {
	case VerbHELO, VerbEHLO:
		if arg == "" {
			return cmd, &oracleErrSyntax{Line: line}
		}
		return cmd, nil
	case VerbMAIL:
		addr, err := oracleParsePath(arg, "FROM")
		if err != nil {
			return cmd, err
		}
		cmd.Addr = addr
		return cmd, nil
	case VerbRCPT:
		addr, err := oracleParsePath(arg, "TO")
		if err != nil {
			return cmd, err
		}
		if cmd.Addr = addr; addr == "" {
			return cmd, &oracleErrSyntax{Line: line}
		}
		return cmd, nil
	case VerbVRFY:
		if arg == "" {
			return cmd, &oracleErrSyntax{Line: line}
		}
		cmd.Addr = strings.Trim(arg, "<>")
		return cmd, nil
	case VerbDATA, VerbRSET, VerbNOOP, VerbQUIT:
		return cmd, nil
	default:
		return cmd, &oracleErrUnknownVerb{VerbText: verbText}
	}
}

func oracleParsePath(arg, keyword string) (string, error) {
	upper := strings.ToUpper(arg)
	prefix := keyword + ":"
	if !strings.HasPrefix(upper, prefix) {
		return "", &oracleErrSyntax{Line: arg}
	}
	rest := strings.TrimSpace(arg[len(prefix):])
	path := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		path = rest[:i]
	}
	if !strings.HasPrefix(path, "<") || !strings.HasSuffix(path, ">") {
		return "", &oracleErrSyntax{Line: arg}
	}
	addr := path[1 : len(path)-1]
	if i := strings.LastIndexByte(addr, ':'); i >= 0 && strings.HasPrefix(addr, "@") {
		addr = addr[i+1:]
	}
	if addr == "" {
		return "", nil
	}
	if err := oracleValidateAddress(addr); err != nil {
		return "", err
	}
	return addr, nil
}

func oracleValidateAddress(addr string) error {
	at := strings.IndexByte(addr, '@')
	if at <= 0 || at == len(addr)-1 || strings.IndexByte(addr[at+1:], '@') >= 0 {
		return &oracleErrSyntax{Line: addr}
	}
	for i := 0; i < len(addr); i++ {
		if c := addr[i]; c <= ' ' || c == 127 {
			return &oracleErrSyntax{Line: addr}
		}
	}
	return nil
}

// errClass buckets a parse error from either parser into "syntax",
// "unknown", or "nil" so the equivalence check compares classes, not
// message text (the byte parser deliberately drops the detail text).
func errClass(err error) string {
	switch err.(type) {
	case nil:
		return "nil"
	case *ErrSyntax, *oracleErrSyntax:
		return "syntax"
	case *ErrUnknownVerb, *oracleErrUnknownVerb:
		return "unknown"
	default:
		return "other"
	}
}
