package smtp

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// serveSession drives a full SMTP session over conn using the shared
// state machine — the same loop both server architectures run. It sends
// completed envelopes to envs.
func serveSession(conn net.Conn, cfg Config, envs chan<- Envelope) {
	defer conn.Close()
	c := NewConn(conn)
	s := NewSession(cfg)
	if err := c.WriteReply(s.Greeting()); err != nil {
		return
	}
	for {
		line, err := c.ReadLine()
		if err != nil {
			if err == ErrLineTooLong {
				if c.WriteReply(ReplyLineTooLong) == nil {
					continue
				}
			}
			return
		}
		reply, action := s.CommandBytes(line)
		switch action {
		case ActionData:
			if err := c.WriteReply(reply); err != nil {
				return
			}
			body, err := c.ReadData(s.MaxMessageBytes())
			if err != nil {
				if errors.Is(err, ErrMessageTooBig) {
					if c.WriteReply(s.AbortData()) == nil {
						continue
					}
				}
				return
			}
			env, done := s.FinishData(body)
			if envs != nil {
				envs <- env
			}
			if err := c.WriteReply(done); err != nil {
				return
			}
		case ActionQuit:
			c.WriteReply(reply)
			return
		default:
			if err := c.WriteReply(reply); err != nil {
				return
			}
		}
	}
}

// startTestServer returns a client connected to an in-process session.
func startTestServer(t *testing.T, cfg Config) (*Client, <-chan Envelope, *sync.WaitGroup) {
	t.Helper()
	serverConn, clientConn := net.Pipe()
	envs := make(chan Envelope, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveSession(serverConn, cfg, envs)
	}()
	client, err := NewClient(clientConn)
	if err != nil {
		t.Fatal(err)
	}
	return client, envs, &wg
}

func validCfg() Config {
	return Config{
		Hostname: "mx.test",
		ValidateRcpt: func(addr string) bool {
			return strings.HasSuffix(strings.ToLower(addr), "@valid.test")
		},
	}
}

func TestClientFullTransaction(t *testing.T) {
	client, envs, wg := startTestServer(t, validCfg())
	if got := client.Banner().Code; got != 220 {
		t.Fatalf("banner = %d", got)
	}
	if err := client.Helo("load.test"); err != nil {
		t.Fatal(err)
	}
	n, err := client.Send("sender@remote.test",
		[]string{"a@valid.test", "b@valid.test"},
		[]byte("Subject: t\r\n\r\n.dot line\r\nbody\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("accepted = %d, want 2", n)
	}
	env := <-envs
	if env.Sender != "sender@remote.test" || len(env.Rcpts) != 2 {
		t.Fatalf("envelope = %+v", env)
	}
	if string(env.Data) != "Subject: t\r\n\r\n.dot line\r\nbody\r\n" {
		t.Fatalf("data = %q", env.Data)
	}
	if err := client.Quit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestClientAllRecipientsBounce(t *testing.T) {
	client, envs, wg := startTestServer(t, validCfg())
	client.Helo("h")
	n, err := client.Send("s@r.test", []string{"x@nowhere.test", "y@nowhere.test"}, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("accepted = %d, want 0", n)
	}
	select {
	case env := <-envs:
		t.Fatalf("bounce-only transaction delivered: %+v", env)
	default:
	}
	client.Quit()
	wg.Wait()
}

func TestClientPartialBounce(t *testing.T) {
	client, envs, wg := startTestServer(t, validCfg())
	client.Helo("h")
	n, err := client.Send("s@r.test",
		[]string{"ghost@nowhere.test", "real@valid.test"}, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("accepted = %d, want 1", n)
	}
	env := <-envs
	if len(env.Rcpts) != 1 || env.Rcpts[0] != "real@valid.test" {
		t.Fatalf("envelope rcpts = %v", env.Rcpts)
	}
	client.Quit()
	wg.Wait()
}

func TestClientAbortMidSession(t *testing.T) {
	// §4.1's "unfinished SMTP transaction": connect, HELO, hang up.
	client, envs, wg := startTestServer(t, validCfg())
	client.Helo("h")
	if err := client.Abort(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case env := <-envs:
		t.Fatalf("aborted session delivered: %+v", env)
	default:
	}
}

func TestClientMultipleMailsOneConnection(t *testing.T) {
	client, envs, wg := startTestServer(t, validCfg())
	client.Helo("h")
	for i := 0; i < 3; i++ {
		if _, err := client.Send("s@r.test", []string{"a@valid.test"}, []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	client.Quit()
	wg.Wait()
	close := 0
	for len(envs) > 0 {
		<-envs
		close++
	}
	if close != 3 {
		t.Fatalf("delivered = %d, want 3", close)
	}
}

func TestClientOversizeMessage(t *testing.T) {
	cfg := validCfg()
	cfg.MaxMessageBytes = 64
	client, _, wg := startTestServer(t, cfg)
	client.Helo("h")
	client.Mail("s@r.test")
	client.Rcpt("a@valid.test")
	err := client.Data(make([]byte, 1000))
	var unexpected *UnexpectedReplyError
	if !errors.As(err, &unexpected) || unexpected.Reply.Code != 552 {
		t.Fatalf("oversize err = %v, want 552", err)
	}
	// Connection still usable afterwards.
	if err := client.Helo("again"); err != nil {
		t.Fatal(err)
	}
	client.Quit()
	wg.Wait()
}

func TestClientRejectsBadBanner(t *testing.T) {
	serverConn, clientConn := net.Pipe()
	go func() {
		NewConn(serverConn).WriteReply(Reply{554, "go away"})
		serverConn.Close()
	}()
	if _, err := NewClient(clientConn); err == nil {
		t.Fatal("554 banner accepted")
	}
}

func TestClientCommandTimeout(t *testing.T) {
	// A server that greets and then goes silent: without a per-command
	// deadline the HELO would block forever.
	serverConn, clientConn := net.Pipe()
	defer serverConn.Close()
	go func() {
		NewConn(serverConn).WriteReply(Reply{220, "slow.example ESMTP"})
		// Drain the HELO line but never answer.
		buf := make([]byte, 256)
		serverConn.Read(buf) //nolint:errcheck
	}()
	c, err := NewClient(clientConn, WithCommandTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = c.Helo("me")
	if err == nil {
		t.Fatal("HELO against a stalled server succeeded")
	}
	var te *CommandTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v (%T), want *CommandTimeoutError", err, err)
	}
	if !te.Timeout() || te.Op != "HELO" {
		t.Fatalf("timeout error = %+v", te)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", took)
	}
}

func TestClientBannerTimeout(t *testing.T) {
	serverConn, clientConn := net.Pipe()
	defer serverConn.Close()
	// Server never sends the banner.
	_, err := NewClient(clientConn, WithCommandTimeout(30*time.Millisecond))
	var te *CommandTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *CommandTimeoutError", err)
	}
}

func TestClientNoTimeoutStreamsStillWork(t *testing.T) {
	// Streams without SetDeadline (not net.Conn) must keep working with
	// the option set: the deadline is simply not armed.
	client, _, wg := startTestServer(t, validCfg())
	if err := client.Helo("h"); err != nil {
		t.Fatal(err)
	}
	client.Quit()
	wg.Wait()
}
