package smtp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"repro/internal/trace"
)

// Client speaks the client side of SMTP over any stream — the engine of
// the paper's two load generators ("Client program 1" and "Client
// program 2" in Table 1) and of the outbound MX-failover deliverer.
type Client struct {
	conn       *Conn
	raw        io.Closer
	banner     Reply
	cmdTimeout time.Duration
	// exts holds the extension keywords the server advertised in its
	// EHLO reply; nil until Ehlo/Hello succeeds with extensions.
	exts map[string]bool
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithCommandTimeout bounds every command round trip (write + reply
// read) and the DATA body transfer to d, when the underlying stream
// supports deadlines (net.Conn does). A stalled next hop then surfaces
// as a *CommandTimeoutError instead of pinning the caller — a delivery
// worker, typically — forever. Zero disables (the default).
func WithCommandTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.cmdTimeout = d }
}

// UnexpectedReplyError reports a server reply outside the expected class.
type UnexpectedReplyError struct {
	Op    string
	Reply Reply
}

func (e *UnexpectedReplyError) Error() string {
	return fmt.Sprintf("smtp: %s: unexpected reply %s", e.Op, e.Reply)
}

// CommandTimeoutError reports a command that exceeded the client's
// per-command timeout. It implements net.Error's Timeout contract, so
// errors.Is(err, context.DeadlineExceeded) callers and net-style
// timeout checks both work.
type CommandTimeoutError struct {
	// Op is the command that stalled (HELO, MAIL, DATA, ...).
	Op string
	// After is the configured per-command timeout.
	After time.Duration
}

func (e *CommandTimeoutError) Error() string {
	return fmt.Sprintf("smtp: %s: no reply within %v", e.Op, e.After)
}

// Timeout marks the error as a timeout (net.Error convention).
func (e *CommandTimeoutError) Timeout() bool { return true }

// Temporary marks the error as retryable: a stalled hop may recover.
func (e *CommandTimeoutError) Temporary() bool { return true }

// deadliner is the subset of net.Conn the command timeout needs.
type deadliner interface {
	SetDeadline(t time.Time) error
}

// armDeadline starts the per-command countdown; the returned func
// clears it and translates a deadline-exceeded error.
func (c *Client) armDeadline(op string) func(err error) error {
	d, ok := c.raw.(deadliner)
	if c.cmdTimeout <= 0 || !ok {
		return func(err error) error { return err }
	}
	d.SetDeadline(time.Now().Add(c.cmdTimeout)) //nolint:errcheck // best effort: a failed arm surfaces as the op error
	return func(err error) error {
		d.SetDeadline(time.Time{}) //nolint:errcheck
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return &CommandTimeoutError{Op: op, After: c.cmdTimeout}
		}
		return err
	}
}

// NewClient wraps an established stream and reads the server banner.
func NewClient(rw io.ReadWriteCloser, opts ...ClientOption) (*Client, error) {
	c := &Client{conn: NewConn(rw), raw: rw}
	for _, o := range opts {
		o(c)
	}
	done := c.armDeadline("banner")
	banner, err := c.conn.ReadReply()
	if err != nil {
		rw.Close()
		return nil, fmt.Errorf("smtp: reading banner: %w", done(err))
	}
	done(nil)
	if banner.Code != 220 {
		rw.Close()
		return nil, &UnexpectedReplyError{Op: "banner", Reply: banner}
	}
	c.banner = banner
	return c, nil
}

// Dial connects to addr over TCP with a timeout and reads the banner.
func Dial(addr string, timeout time.Duration, opts ...ClientOption) (*Client, error) {
	return DialFrom(addr, "", timeout, opts...)
}

// DialFrom is Dial with an explicit local source address (an IP, port
// chosen by the kernel). Trace replayers use it to present each trace
// connection from its own loopback alias — 127.0.0.0/8 all routes to lo
// on Linux — so per-source server state (policy reputation, DNSBL
// verdicts, telemetry) keys on distinct addresses instead of collapsing
// onto 127.0.0.1. An empty local address behaves exactly like Dial.
func DialFrom(addr, local string, timeout time.Duration, opts ...ClientOption) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	if local != "" {
		ip := net.ParseIP(local)
		if ip == nil {
			return nil, fmt.Errorf("smtp: bad local address %q", local)
		}
		d.LocalAddr = &net.TCPAddr{IP: ip}
	}
	nc, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("smtp: dial %s: %w", addr, err)
	}
	return NewClient(nc, opts...)
}

// Banner returns the server's 220 greeting.
func (c *Client) Banner() Reply { return c.banner }

// cmd sends a command and checks the reply against wantCode (0 = any
// positive). The whole round trip runs under the per-command deadline
// when one is configured.
func (c *Client) cmd(op, line string, wantCode int) (Reply, error) {
	done := c.armDeadline(op)
	if err := c.conn.WriteLine(line); err != nil {
		return Reply{}, fmt.Errorf("smtp: %s: %w", op, done(err))
	}
	r, err := c.conn.ReadReply()
	if err = done(err); err != nil {
		return Reply{}, fmt.Errorf("smtp: %s: %w", op, err)
	}
	if wantCode != 0 && r.Code != wantCode {
		return r, &UnexpectedReplyError{Op: op, Reply: r}
	}
	if wantCode == 0 && !r.IsPositive() {
		return r, &UnexpectedReplyError{Op: op, Reply: r}
	}
	return r, nil
}

// Helo sends HELO.
func (c *Client) Helo(name string) error {
	_, err := c.cmd("HELO", "HELO "+name, 250)
	return err
}

// Ehlo sends EHLO and records the extension keywords the server
// advertises (first reply line is the hostname, each continuation one
// keyword with optional parameters).
func (c *Client) Ehlo(name string) error {
	r, err := c.cmd("EHLO", "EHLO "+name, 250)
	if err != nil {
		return err
	}
	c.exts = nil
	lines := strings.Split(r.Text, "\n")
	for _, l := range lines[1:] {
		fields := strings.Fields(l)
		if len(fields) == 0 {
			continue
		}
		if c.exts == nil {
			c.exts = make(map[string]bool, len(lines)-1)
		}
		c.exts[strings.ToUpper(fields[0])] = true
	}
	return nil
}

// Hello greets the server, preferring EHLO and falling back to HELO
// when the peer rejects it — the RFC 5321 §3.2 downgrade, so extension
// discovery never costs interoperability with a pre-ESMTP peer.
func (c *Client) Hello(name string) error {
	err := c.Ehlo(name)
	var unexpected *UnexpectedReplyError
	if err != nil && errors.As(err, &unexpected) {
		return c.Helo(name)
	}
	return err
}

// Supports reports whether the server's EHLO reply advertised ext
// (upper-case keyword, e.g. "XTRACE").
func (c *Client) Supports(ext string) bool { return c.exts[ext] }

// Mail sends MAIL FROM. An empty sender sends the null reverse-path <>.
func (c *Client) Mail(sender string) error {
	_, err := c.cmd("MAIL", fmt.Sprintf("MAIL FROM:<%s>", sender), 250)
	return err
}

// MailTraced sends MAIL FROM carrying tc as an XTRACE parameter — but
// only when the peer advertised XTRACE and tc is a sampled context;
// otherwise it degrades to a plain Mail, silently dropping the trace
// so non-supporting hops see an RFC-clean command.
func (c *Client) MailTraced(sender string, tc trace.Context) error {
	if !tc.Valid() || !c.Supports("XTRACE") {
		return c.Mail(sender)
	}
	var buf [trace.ContextTextLen]byte
	line := fmt.Sprintf("MAIL FROM:<%s> XTRACE=%s", sender, tc.AppendText(buf[:0]))
	_, err := c.cmd("MAIL", line, 250)
	return err
}

// Rcpt sends RCPT TO and returns the server reply; a 550 reply (bounce)
// is returned as the reply with a nil error so callers can count bounces
// without error plumbing.
func (c *Client) Rcpt(addr string) (Reply, error) {
	r, err := c.cmd("RCPT", fmt.Sprintf("RCPT TO:<%s>", addr), 0)
	var unexpected *UnexpectedReplyError
	if err != nil && errors.As(err, &unexpected) && unexpected.Reply.Code == 550 {
		return unexpected.Reply, nil
	}
	return r, err
}

// Data sends the message body through DATA and the terminating dot.
func (c *Client) Data(body []byte) error {
	if _, err := c.cmd("DATA", "DATA", 354); err != nil {
		return err
	}
	done := c.armDeadline("DATA body")
	if err := c.conn.WriteData(body); err != nil {
		return fmt.Errorf("smtp: sending data: %w", done(err))
	}
	r, err := c.conn.ReadReply()
	if err = done(err); err != nil {
		return fmt.Errorf("smtp: data reply: %w", err)
	}
	if r.Code != 250 {
		return &UnexpectedReplyError{Op: "DATA body", Reply: r}
	}
	return nil
}

// Reset sends RSET.
func (c *Client) Reset() error {
	_, err := c.cmd("RSET", "RSET", 250)
	return err
}

// Quit sends QUIT and closes the connection.
func (c *Client) Quit() error {
	_, errCmd := c.cmd("QUIT", "QUIT", 221)
	errClose := c.raw.Close()
	if errCmd != nil {
		return errCmd
	}
	return errClose
}

// Abort closes the connection without QUIT — the "unfinished SMTP
// transaction" behaviour of §4.1.
func (c *Client) Abort() error { return c.raw.Close() }

// Send performs one whole mail transaction (MAIL, RCPTs, DATA). It
// returns the number of accepted recipients; if none are accepted the
// DATA phase is skipped, mirroring what real clients (and spammers
// probing with random guesses) experience.
func (c *Client) Send(sender string, rcpts []string, body []byte) (accepted int, err error) {
	return c.SendTraced(sender, rcpts, body, trace.Context{})
}

// SendTraced is Send with a message trace context propagated on the
// MAIL command (see MailTraced for the degradation rules).
func (c *Client) SendTraced(sender string, rcpts []string, body []byte, tc trace.Context) (accepted int, err error) {
	if err := c.MailTraced(sender, tc); err != nil {
		return 0, err
	}
	for _, rcpt := range rcpts {
		r, err := c.Rcpt(rcpt)
		if err != nil {
			return accepted, err
		}
		if r.Code == 250 {
			accepted++
		}
	}
	if accepted == 0 {
		// Clear the failed transaction so the connection is reusable.
		if err := c.Reset(); err != nil {
			return 0, err
		}
		return 0, nil
	}
	if err := c.Data(body); err != nil {
		return accepted, err
	}
	return accepted, nil
}
