// Package costmodel centralizes every timing constant the simulation uses
// to stand in for the paper's 2007 testbed (Table 1: 3.0 GHz Xeon, 2 GB
// RAM, 10K SCSI disk, Linux 2.6.20, 30 ms emulated network delay).
//
// The constants are calibrated — see the calibration tests in
// internal/simmail — so that the simulated vanilla postfix reproduces the
// paper's §3 tuning result: throughput peaking at ≈180 mails/sec with the
// smtpd process limit at 500. Every figure then reuses the same model, so
// relative effects (hybrid vs vanilla, MFS vs mbox, prefix vs IP caching)
// come out of one consistent set of assumptions.
package costmodel

import "time"

// Process and scheduling costs for a 2007-era Linux 2.6 kernel.
const (
	// ForkCost is the cost of fork+exec-image-touch for a new smtpd
	// process. Postfix recycles processes, so this is paid only when the
	// pool grows, not per connection.
	ForkCost = 400 * time.Microsecond

	// ProcessWakeup is the scheduler cost charged each time a blocked
	// smtpd process becomes runnable and is dispatched (one per SMTP
	// round trip in the process-per-connection architecture).
	ProcessWakeup = 15 * time.Microsecond

	// SwitchBase is the fixed part of a context switch.
	SwitchBase = 10 * time.Microsecond

	// SwitchPerRunnable is the load-dependent part of a context switch:
	// cache/TLB pollution grows with the number of runnable processes.
	SwitchPerRunnable = 120 * time.Nanosecond

	// EventLoopDispatch is the cost for the hybrid master's event loop to
	// process one socket event (select/poll amortized + read). It replaces
	// ProcessWakeup+switch for the pre-trust phase of a connection.
	EventLoopDispatch = 3 * time.Microsecond

	// EventLoopDataFactor multiplies per-KB body costs when a message
	// body is (mis)handled inside the master's event loop instead of a
	// worker: nonblocking partial reads, buffer reassembly, and re-entry
	// through select make streaming through an event loop dearer per
	// byte (exercised only by the trust-point ablation; the paper
	// delegates before DATA, §5.2, for exactly this plus isolation).
	EventLoopDataFactor = 2

	// TaskHandoff is the cost of delegating a trusted connection from the
	// master to an smtpd process over a UNIX domain socket, including the
	// descriptor transfer (§5.3).
	TaskHandoff = 30 * time.Microsecond
)

// SMTP command processing CPU costs (parsing, validation, logging).
const (
	// CommandParse is charged per SMTP command line (HELO, MAIL, RCPT…).
	CommandParse = 20 * time.Microsecond

	// RcptLookup is the access-database lookup validating one RCPT TO
	// address against the local recipient and alias tables (two map
	// probes plus logging in postfix's trivial-rewrite round trip).
	RcptLookup = 150 * time.Microsecond

	// DataPerKB is the CPU cost of receiving and scanning one KB of
	// message body (buffer copies, dot-stuffing removal, header checks).
	DataPerKB = 35 * time.Microsecond

	// CleanupPerMail is the per-mail processing cost of the cleanup(8)
	// stage: envelope encoding, header rewriting, queue-id assignment,
	// and the body checks third-party filter hooks run on every mail
	// (§5.2 mentions keyword matching and image tests as standard
	// add-ons). Calibrated so the vanilla server peaks at ≈180 mails/s.
	CleanupPerMail = 3 * time.Millisecond

	// DeliverPerRcpt is the local(8) CPU cost per recipient delivery
	// excluding disk time: one full pass of the delivery path (duplicate
	// elimination, mailbox locking, logging).
	DeliverPerRcpt = 300 * time.Microsecond

	// MFSPointerCPU is the CPU cost of adding one additional recipient to
	// an MFS NWrite: appending a pointer tuple, with no second pass of
	// the delivery path (§6.2's mail_nwrite takes all mailboxes at once).
	MFSPointerCPU = 50 * time.Microsecond
)

// Network model (Table 1: gigabit switch with 30 ms emulated delay).
const (
	// NetRTT is the client↔server round-trip time.
	NetRTT = 30 * time.Millisecond

	// NetPerKB is the serialization time per KB on the gigabit path.
	NetPerKB = 8 * time.Microsecond

	// SocketBufferBytes is the default kernel UNIX-domain socket buffer;
	// with ≈7-recipient tasks this holds ≈28 queued delegations (§5.3).
	SocketBufferBytes = 64 * 1024

	// TaskBytesPerRcpt approximates the wire size of one delegated task's
	// per-recipient payload (addresses + envelope + descriptor record).
	// 64 KB / (7 rcpt × TaskBytesPerRcpt) ≈ 28 tasks, matching §5.3.
	TaskBytesPerRcpt = 325
)

// DNSQueryCPU is the effective server-side cost of issuing one upstream
// DNSBL query: resolver work, socket churn, interrupt handling, retries
// and timeout bookkeeping amortized per query. It is the §7.2 calibration
// knob: the 10.1-percentage-point cache-hit improvement of prefix-based
// lookups translates into the paper's 10.8% throughput gain at 200
// connections/sec when each avoided query saves this much server time.
const DNSQueryCPU = 14 * time.Millisecond

// SwitchCeiling caps the total context-switch penalty: beyond a point the
// caches are already cold and extra processes add little per-switch cost.
const SwitchCeiling = 400 * time.Microsecond

// SwitchPerProcess is the context-switch penalty component proportional
// to the number of smtpd processes actually forked (memory footprint and
// scheduler state), as opposed to SwitchPerRunnable which tracks
// instantaneous load. It drives the §3 throughput degradation past 500
// processes.
const SwitchPerProcess = 200 * time.Nanosecond

// ClientThink is the closed-system client's mean think time between
// finishing one SMTP session and starting the next on the same connection
// slot (the Z parameter of the closed-system model, Schroeder et al.
// (paper ref [24])). It is what positions the §3 saturation knee near 500
// concurrent smtpd processes.
const ClientThink = 2500 * time.Millisecond

// DNSBLTimeout is how long the server waits for a DNSBL answer before
// proceeding without it.
const DNSBLTimeout = 2 * time.Second

// DNSBLCacheTTL is the resolver cache lifetime for DNSBL answers; the
// paper uses 24 h because blacklists update infrequently (§7.2).
const DNSBLCacheTTL = 24 * time.Hour

// FSModel is a filesystem personality: the cost parameters of metadata
// and data operations. Figures 10 and 11 run the same mailbox-store
// benchmark under two personalities.
type FSModel struct {
	// Name identifies the personality in reports ("ext3", "reiser").
	Name string

	// Create is the cost of creating a new file (directory entry,
	// inode allocation, and its share of the journal commit).
	Create time.Duration

	// Open is the cost of opening an existing file.
	Open time.Duration

	// AppendPerKB is the data write cost per KB appended.
	AppendPerKB time.Duration

	// AppendFixed is the fixed per-append overhead (block allocation,
	// page-cache bookkeeping, journal metadata for the size change).
	AppendFixed time.Duration

	// Link is the cost of creating a hard link.
	Link time.Duration

	// Unlink is the cost of removing a directory entry.
	Unlink time.Duration

	// ReadPerKB is the data read cost per KB.
	ReadPerKB time.Duration

	// Sync is the cost of an fsync — the journal commit the queue file
	// pays before the server may acknowledge DATA.
	Sync time.Duration
}

// Ext3 models the paper's default base filesystem, Ext3 with journaling:
// data=journal-style commits make small-file creation expensive, which is
// why maildir collapses in Figure 10 ([16] in the paper).
var Ext3 = FSModel{
	Name:        "ext3",
	Create:      2200 * time.Microsecond,
	Open:        60 * time.Microsecond,
	AppendPerKB: 55 * time.Microsecond,
	AppendFixed: 260 * time.Microsecond,
	Link:        1500 * time.Microsecond,
	Unlink:      300 * time.Microsecond,
	ReadPerKB:   30 * time.Microsecond,
	Sync:        1600 * time.Microsecond,
}

// Reiser models ReiserFS, which packs small files into the tree and makes
// creation and linking far cheaper — the reason hardlink-maildir recovers
// in Figure 11.
var Reiser = FSModel{
	Name:        "reiser",
	Create:      420 * time.Microsecond,
	Open:        45 * time.Microsecond,
	AppendPerKB: 60 * time.Microsecond,
	AppendFixed: 200 * time.Microsecond,
	Link:        260 * time.Microsecond,
	Unlink:      200 * time.Microsecond,
	ReadPerKB:   32 * time.Microsecond,
	Sync:        800 * time.Microsecond,
}

// SwitchCost returns the modelled context-switch penalty given the number
// of runnable processes (see SwitchBase/SwitchPerRunnable).
func SwitchCost(runnable int) time.Duration {
	return SwitchBase + time.Duration(runnable)*SwitchPerRunnable
}

// TasksPerSocketBuffer returns how many delegated tasks fit in the
// master→smtpd socket buffer for a given recipients-per-mail average
// (§5.3: ≈28 for 7 recipients).
func TasksPerSocketBuffer(rcptsPerMail int) int {
	if rcptsPerMail < 1 {
		rcptsPerMail = 1
	}
	return SocketBufferBytes / (rcptsPerMail * TaskBytesPerRcpt)
}
