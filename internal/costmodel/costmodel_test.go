package costmodel

import (
	"testing"
	"time"
)

func TestTasksPerSocketBuffer(t *testing.T) {
	// §5.3: with ~7 recipients per mail, the 64 KB socket buffer holds
	// about 28 queued tasks.
	got := TasksPerSocketBuffer(7)
	if got < 26 || got > 30 {
		t.Fatalf("TasksPerSocketBuffer(7) = %d, want ≈28", got)
	}
	if TasksPerSocketBuffer(0) != TasksPerSocketBuffer(1) {
		t.Fatal("rcpts < 1 should clamp to 1")
	}
	if TasksPerSocketBuffer(1) <= TasksPerSocketBuffer(7) {
		t.Fatal("fewer recipients per task should fit more tasks")
	}
}

func TestSwitchCostMonotone(t *testing.T) {
	if SwitchCost(0) != SwitchBase {
		t.Fatalf("SwitchCost(0) = %v, want %v", SwitchCost(0), SwitchBase)
	}
	prev := time.Duration(0)
	for _, n := range []int{0, 100, 500, 1000} {
		c := SwitchCost(n)
		if c < prev {
			t.Fatalf("SwitchCost not monotone at %d", n)
		}
		prev = c
	}
	// The load-dependent term must be material at 1000 runnable processes
	// (it drives the §3 degradation past 500 smtpd processes).
	if SwitchCost(1000) < 2*SwitchBase {
		t.Fatal("SwitchCost(1000) should at least double the base")
	}
}

func TestFSModelOrdering(t *testing.T) {
	// The relationships the figures rely on, as published in the paper's
	// reference [16]: small-file creation is much more expensive on Ext3
	// than Reiser, and hard links are cheap on Reiser.
	if Ext3.Create <= Reiser.Create {
		t.Error("Ext3 create should cost more than Reiser create")
	}
	if Ext3.Link <= Reiser.Link {
		t.Error("Ext3 link should cost more than Reiser link")
	}
	if Ext3.Create < 3*Reiser.Create {
		t.Error("Ext3 create should be several times Reiser create")
	}
	for _, m := range []FSModel{Ext3, Reiser} {
		if m.Name == "" {
			t.Error("FS model missing name")
		}
		if m.Create <= 0 || m.AppendPerKB <= 0 || m.AppendFixed <= 0 ||
			m.Link <= 0 || m.Open <= 0 || m.Unlink <= 0 || m.ReadPerKB <= 0 {
			t.Errorf("%s: non-positive cost parameter", m.Name)
		}
		// Appending to an existing file must be cheaper than creating a
		// file; otherwise maildir would never lose to mbox.
		if m.AppendFixed >= m.Create {
			t.Errorf("%s: append overhead should undercut create", m.Name)
		}
	}
}

func TestHeadlineConstants(t *testing.T) {
	if NetRTT != 30*time.Millisecond {
		t.Error("Table 1 specifies a 30 ms emulated network delay")
	}
	if DNSBLCacheTTL != 24*time.Hour {
		t.Error("§7.2 uses a 24-hour DNSBL reply TTL")
	}
	if SocketBufferBytes != 64*1024 {
		t.Error("§5.3 assumes the default 64 KB kernel socket buffer")
	}
	if ForkCost <= ProcessWakeup {
		t.Error("fork must dominate a mere wakeup")
	}
	if EventLoopDispatch >= ProcessWakeup {
		t.Error("event-loop dispatch must be cheaper than a process wakeup")
	}
	if TaskHandoff <= EventLoopDispatch {
		t.Error("delegation includes descriptor transfer; costs more than a dispatch")
	}
}
