package spool

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/fsim"
	"repro/internal/trace"
)

func env(id string, attempts int) Envelope {
	return Envelope{
		ID:       id,
		Sender:   "s@a.test",
		Rcpts:    []string{"r1@b.test", "r2@c.test"},
		Attempts: attempts,
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	nb := time.Unix(0, 1234567890)
	e := env("Q1", 2)
	e.NotBefore = nb
	if err := s.Append(e, []byte("body bytes")); err != nil {
		t.Fatal(err)
	}
	mails, stats, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mails) != 1 || stats.Torn != 0 || stats.Duplicates != 0 {
		t.Fatalf("recover = %d mails, stats %+v", len(mails), stats)
	}
	m := mails[0]
	if m.ID != "Q1" || m.Sender != "s@a.test" || m.Attempts != 2 || m.Lane != LaneActive {
		t.Fatalf("mail = %+v", m.Envelope)
	}
	if !m.NotBefore.Equal(nb) {
		t.Fatalf("notBefore = %v, want %v", m.NotBefore, nb)
	}
	if len(m.Rcpts) != 2 || m.Rcpts[0] != "r1@b.test" || m.Rcpts[1] != "r2@c.test" {
		t.Fatalf("rcpts = %v", m.Rcpts)
	}
	if string(m.Body) != "body bytes" {
		t.Fatalf("body = %q", m.Body)
	}
}

func TestNullSenderAndEmptyBody(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	e := Envelope{ID: "Q1", Sender: "", Rcpts: []string{"r@b.test"}}
	if err := s.Append(e, nil); err != nil {
		t.Fatal(err)
	}
	mails, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mails) != 1 || mails[0].Sender != "" || len(mails[0].Body) != 0 {
		t.Fatalf("mails = %+v", mails)
	}
}

func TestMoveBetweenLanes(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	if err := s.Append(env("Q1", 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Move("Q1", LaneActive, LaneDeferred); err != nil {
		t.Fatal(err)
	}
	if s.LaneDepth(LaneActive) != 0 || s.LaneDepth(LaneDeferred) != 1 {
		t.Fatalf("depths: active %d deferred %d", s.LaneDepth(LaneActive), s.LaneDepth(LaneDeferred))
	}
	mails, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mails) != 1 || mails[0].Lane != LaneDeferred {
		t.Fatalf("mails = %+v", mails)
	}
}

func TestRewriteUpdatesEnvelope(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	if err := s.Append(env("Q1", 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	e := env("Q1", 3)
	e.Rcpts = []string{"left@b.test"} // partial delivery shrank the list
	e.NotBefore = time.Unix(50, 0)
	if err := s.Rewrite(e, []byte("x"), LaneActive, LaneDeferred); err != nil {
		t.Fatal(err)
	}
	mails, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mails) != 1 {
		t.Fatalf("mails = %+v", mails)
	}
	m := mails[0]
	if m.Lane != LaneDeferred || m.Attempts != 3 || len(m.Rcpts) != 1 || m.Rcpts[0] != "left@b.test" {
		t.Fatalf("mail = %+v lane %s", m.Envelope, m.Lane)
	}
}

func TestAckRemoves(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	if err := s.Append(env("Q1", 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Ack("Q1", LaneActive); err != nil {
		t.Fatal(err)
	}
	if s.LaneDepth(LaneActive) != 0 {
		t.Fatal("ack left the file behind")
	}
	// Acking twice (or a mail that never spooled) is not an error.
	if err := s.Ack("Q1", LaneActive); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverDropsTornFiles(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	if err := s.Append(env("Q1", 0), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	// A crash mid-write leaves a short file.
	f, _ := fs.Create("queue/active/Q2")
	f.Write([]byte{9, 0, 0}) //nolint:errcheck
	f.Close()
	// And an empty one (created, nothing durable).
	f2, _ := fs.Create("queue/deferred/Q3")
	f2.Close()
	mails, stats, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mails) != 1 || mails[0].ID != "Q1" {
		t.Fatalf("mails = %+v", mails)
	}
	if stats.Torn != 2 {
		t.Fatalf("torn = %d, want 2", stats.Torn)
	}
	if fs.Exists("queue/active/Q2") || fs.Exists("queue/deferred/Q3") {
		t.Fatal("torn files not cleaned up")
	}
}

func TestRecoverResolvesCrashedMove(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	if err := s.Append(env("Q1", 1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between link and remove: both names exist.
	if err := fs.Link("queue/active/Q1", "queue/deferred/Q1"); err != nil {
		t.Fatal(err)
	}
	mails, stats, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mails) != 1 || mails[0].Lane != LaneDeferred {
		t.Fatalf("mails = %+v", mails)
	}
	if stats.Duplicates != 1 {
		t.Fatalf("duplicates = %d", stats.Duplicates)
	}
	if fs.Exists("queue/active/Q1") {
		t.Fatal("losing duplicate not removed")
	}
}

func TestRecoverPrecedenceHold(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	if err := s.Append(env("Q1", 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("queue/active/Q1", "queue/hold/Q1"); err != nil {
		t.Fatal(err)
	}
	mails, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mails) != 1 || mails[0].Lane != LaneHold {
		t.Fatalf("mails = %+v", mails)
	}
}

// TestCrashPointEnumeration kills the filesystem at every mutating
// operation of an append → defer-rewrite → redispatch → ack lifecycle
// and asserts the recovery invariant at each point: a mail is either
// fully absent (crash before its append synced) or recovered exactly
// once with a consistent envelope; after the ack it is gone.
func TestCrashPointEnumeration(t *testing.T) {
	scenario := func(fs *fsim.Fault) error {
		s := New(fs, "queue")
		if err := s.Append(env("Q1", 0), []byte("payload")); err != nil {
			return err
		}
		e := env("Q1", 1)
		e.NotBefore = time.Unix(10, 0)
		if err := s.Rewrite(e, []byte("payload"), LaneActive, LaneDeferred); err != nil {
			return err
		}
		if err := s.Move("Q1", LaneDeferred, LaneActive); err != nil {
			return err
		}
		return s.Ack("Q1", LaneActive)
	}
	// Dry run sizes the enumeration.
	dry := fsim.NewFault()
	if err := scenario(dry); err != nil {
		t.Fatal(err)
	}
	total := dry.Steps()
	if total < 6 {
		t.Fatalf("scenario too short to be interesting: %d steps", total)
	}
	for k := 0; k <= total; k++ {
		fs := fsim.NewFault()
		fs.CrashAfter(k)
		err := scenario(fs)
		if k < total && !errors.Is(err, fsim.ErrCrashed) {
			t.Fatalf("crash point %d: scenario err = %v, want ErrCrashed", k, err)
		}
		fs.Recover()
		s := New(fs, "queue")
		mails, stats, rerr := s.Recover()
		if rerr != nil {
			t.Fatalf("crash point %d: recover: %v", k, rerr)
		}
		if len(mails) > 1 {
			t.Fatalf("crash point %d: mail recovered twice: %+v", k, mails)
		}
		if k == total && len(mails) != 0 {
			t.Fatalf("acked mail survived full run: %+v", mails)
		}
		for _, m := range mails {
			if m.ID != "Q1" || string(m.Body) != "payload" {
				t.Fatalf("crash point %d: inconsistent recovery %+v body %q", k, m.Envelope, m.Body)
			}
			if m.Attempts != 0 && m.Attempts != 1 {
				t.Fatalf("crash point %d: impossible attempts %d", k, m.Attempts)
			}
		}
		// A second recover returns the same view (idempotent cleanup).
		again, stats2, rerr := s.Recover()
		if rerr != nil || len(again) != len(mails) {
			t.Fatalf("crash point %d: second recover: %v (%d vs %d mails)", k, rerr, len(again), len(mails))
		}
		if stats2.Torn != 0 || stats2.Duplicates != 0 {
			t.Fatalf("crash point %d: second recover not clean: first %+v then %+v", k, stats, stats2)
		}
	}
}

func TestManyMailsRecoverAcrossLanes(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("Q%03d", i)
		if err := s.Append(env(id, 0), []byte(id)); err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 1:
			if err := s.Move(id, LaneActive, LaneDeferred); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := s.Move(id, LaneActive, LaneHold); err != nil {
				t.Fatal(err)
			}
		}
	}
	mails, stats, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mails) != 30 {
		t.Fatalf("recovered %d mails", len(mails))
	}
	if stats.Recovered[LaneActive] != 10 || stats.Recovered[LaneDeferred] != 10 || stats.Recovered[LaneHold] != 10 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, m := range mails {
		if string(m.Body) != m.ID {
			t.Fatalf("body mismatch for %s: %q", m.ID, m.Body)
		}
	}
}

func TestEnvelopeTraceRoundTrip(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := New(fs, "queue")
	e := env("Q1", 1)
	e.Trace = trace.Context{Hi: 0xdeadbeefcafef00d, Lo: 0x0123456789abcdef, Span: 0xfeedface}
	if err := s.Append(e, []byte("traced body")); err != nil {
		t.Fatal(err)
	}
	mails, stats, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mails) != 1 || stats.Torn != 0 {
		t.Fatalf("recover = %d mails, stats %+v", len(mails), stats)
	}
	if got := mails[0].Trace; got != e.Trace {
		t.Fatalf("trace = %+v, want %+v", got, e.Trace)
	}
}

func TestEnvelopeV1DecodesWithZeroTrace(t *testing.T) {
	// A v1 frame is today's encoding minus the 24-byte trace tail, with
	// the version byte rolled back — exactly what a spool written before
	// the tracing upgrade holds. It must decode cleanly, trace zeroed.
	e := env("Q7", 3)
	e.NotBefore = time.Unix(0, 987654321)
	e.Trace = trace.Context{Hi: 1, Lo: 2, Span: 3} // must NOT survive the downgrade
	buf, err := encodeEnvelope(e)
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), buf[:len(buf)-24]...)
	v1[0] = envVersionV1
	got, err := decodeEnvelope(v1)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "Q7" || got.Attempts != 3 || !got.NotBefore.Equal(e.NotBefore) ||
		len(got.Rcpts) != 2 || got.Rcpts[1] != "r2@c.test" {
		t.Fatalf("v1 envelope = %+v", got)
	}
	if got.Trace.Valid() || got.Trace.Span != 0 {
		t.Fatalf("v1 envelope decoded with trace %+v, want zero", got.Trace)
	}

	// And the v2 tail round-trips through the raw codec too.
	got2, err := decodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Trace != e.Trace {
		t.Fatalf("v2 trace = %+v, want %+v", got2.Trace, e.Trace)
	}

	// A v2 frame with a truncated trace tail is torn, not silently v1.
	trunc := append([]byte(nil), buf[:len(buf)-8]...)
	if _, err := decodeEnvelope(trunc); err == nil {
		t.Fatal("truncated v2 trace tail must fail decode")
	}
}
