// Package spool implements the durable on-disk queue store under the
// queue manager: an append-only record file per mail, organised into
// per-lane directories, over any fsim.FS.
//
// A spooled mail is one file holding two length-prefixed frames — the
// MFS record framing reused for the spool (format.go in internal/mfs is
// the model): an envelope frame (sender, recipients, attempts, earliest
// retry time) followed by a body frame. Both frames go out before a
// single Sync, so a mail is durable exactly when Append returns.
//
// Lanes are directories:
//
//	<dir>/active/<id>    — queued or being delivered
//	<dir>/deferred/<id>  — parked for retry (NotBefore says when)
//	<dir>/hold/<id>      — parked indefinitely (operator action or
//	                       undeliverable double-bounces)
//
// Lane moves are link-then-remove, so a crash can leave a mail visible
// in two lanes but never in none. Recover resolves duplicates by lane
// precedence (hold > deferred > active — the destination of every legal
// move wins or is safe), drops torn files (crash mid-write), and returns
// every surviving mail, which is how a restarted queue manager loses no
// accepted mail.
package spool

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/fsim"
	"repro/internal/trace"
)

// Lane is a spool directory: the queue manager's coarse mail state.
type Lane string

// The three lanes of the scheduler's state machine.
const (
	LaneActive   Lane = "active"
	LaneDeferred Lane = "deferred"
	LaneHold     Lane = "hold"
)

// Lanes lists every lane in recovery-precedence order: when a crashed
// lane move leaves a mail in two lanes, the earlier lane wins.
var Lanes = []Lane{LaneHold, LaneDeferred, LaneActive}

// ErrTorn is returned (wrapped) when a spool file fails to parse — the
// signature of a crash mid-write. Recover treats torn files as never
// written.
var ErrTorn = errors.New("spool: torn record")

// Envelope is the durable per-mail metadata.
type Envelope struct {
	// ID is the server-generated queue id (also the spool file name).
	ID string
	// Sender is the envelope sender ("" for the null sender).
	Sender string
	// Rcpts are the recipients still awaiting delivery.
	Rcpts []string
	// Attempts counts delivery attempts made so far.
	Attempts int
	// NotBefore is the earliest next delivery time (zero: immediately);
	// it survives restarts so recovered mail keeps its backoff position.
	NotBefore time.Time
	// Trace is the mail's message-trace context (trace id halves and
	// the span new work parents under). It persists in the envelope
	// frame so a crash-recovered mail resumes its trace; all-zero means
	// the mail was never sampled.
	Trace trace.Context
}

// Mail is one recovered spool entry.
type Mail struct {
	Envelope
	Lane Lane
	Body []byte
}

// RecoveryStats summarizes a Recover scan.
type RecoveryStats struct {
	// Recovered counts mails returned, keyed by lane.
	Recovered map[Lane]int
	// Torn counts files dropped as torn (crash mid-write).
	Torn int
	// Duplicates counts crashed lane moves resolved (the losing name
	// was removed).
	Duplicates int
}

// Store is the spool. Operations on distinct ids are independent; the
// caller (the queue manager, which owns each in-flight item) must
// serialize operations on one id.
type Store struct {
	fs   fsim.FS
	dir  string
	opts options
}

// options collects the knobs behind the functional Option surface; the
// same shape (and option names) as internal/mfs, so the two storage
// constructors read identically.
type options struct {
	sync bool
}

// Option configures a Store at construction.
type Option func(*options)

// WithSync controls whether Append syncs each spooled mail before
// acknowledging it. The spool defaults to synced (it is the durability
// backstop the SMTP 250 rests on); WithSync(false) trades that for
// throughput in experiments and tests that crash via fsim faults
// anyway. Mirrors mfs.WithSync.
func WithSync(on bool) Option { return func(o *options) { o.sync = on } }

// New returns a spool rooted at dir (e.g. "queue") on fs. The directory
// need not exist; lanes are created on first use.
func New(fs fsim.FS, dir string, opts ...Option) *Store {
	if dir == "" {
		dir = "queue"
	}
	o := options{sync: true}
	for _, opt := range opts {
		opt(&o)
	}
	return &Store{fs: fs, dir: dir, opts: o}
}

func (s *Store) path(lane Lane, id string) string {
	return s.dir + "/" + string(lane) + "/" + id
}

// Envelope frame versions. v1 predates message tracing; v2 appends the
// trace context (three u64s) after the recipient list. The decoder
// accepts both, so spools written before the upgrade recover cleanly —
// their mails simply carry no trace.
const (
	envVersionV1 = 1
	envVersion   = 2
)

// encodeEnvelope serializes env as the payload of the envelope frame.
func encodeEnvelope(env Envelope) ([]byte, error) {
	if len(env.ID) > 0xffff || len(env.Sender) > 0xffff {
		return nil, fmt.Errorf("spool: envelope field too long")
	}
	var nb int64
	if !env.NotBefore.IsZero() {
		nb = env.NotBefore.UnixNano()
	}
	buf := make([]byte, 0, 56+len(env.ID)+len(env.Sender))
	buf = append(buf, envVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(env.Attempts))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(nb))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(env.ID)))
	buf = append(buf, env.ID...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(env.Sender)))
	buf = append(buf, env.Sender...)
	if len(env.Rcpts) > 0xffff {
		return nil, fmt.Errorf("spool: too many recipients (%d)", len(env.Rcpts))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(env.Rcpts)))
	for _, r := range env.Rcpts {
		if len(r) > 0xffff {
			return nil, fmt.Errorf("spool: recipient too long")
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r)))
		buf = append(buf, r...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, env.Trace.Hi)
	buf = binary.LittleEndian.AppendUint64(buf, env.Trace.Lo)
	buf = binary.LittleEndian.AppendUint64(buf, env.Trace.Span)
	return buf, nil
}

// decodeEnvelope parses an envelope frame payload.
func decodeEnvelope(p []byte) (Envelope, error) {
	var env Envelope
	rd := &reader{p: p}
	ver, err := rd.byte()
	if err != nil || (ver != envVersionV1 && ver != envVersion) {
		return env, fmt.Errorf("%w: bad envelope version", ErrTorn)
	}
	att, err := rd.u32()
	if err != nil {
		return env, err
	}
	env.Attempts = int(att)
	nb, err := rd.u64()
	if err != nil {
		return env, err
	}
	if nb != 0 {
		env.NotBefore = time.Unix(0, int64(nb))
	}
	if env.ID, err = rd.str(); err != nil {
		return env, err
	}
	if env.Sender, err = rd.str(); err != nil {
		return env, err
	}
	n, err := rd.u16()
	if err != nil {
		return env, err
	}
	env.Rcpts = make([]string, 0, n)
	for i := 0; i < int(n); i++ {
		r, err := rd.str()
		if err != nil {
			return env, err
		}
		env.Rcpts = append(env.Rcpts, r)
	}
	if ver >= envVersion {
		if env.Trace.Hi, err = rd.u64(); err != nil {
			return env, err
		}
		if env.Trace.Lo, err = rd.u64(); err != nil {
			return env, err
		}
		if env.Trace.Span, err = rd.u64(); err != nil {
			return env, err
		}
	}
	return env, nil
}

// reader is a bounds-checked cursor over an envelope payload; every
// failure is a torn record.
type reader struct {
	p   []byte
	pos int
}

func (r *reader) byte() (byte, error) {
	if r.pos+1 > len(r.p) {
		return 0, ErrTorn
	}
	b := r.p[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) u16() (uint16, error) {
	if r.pos+2 > len(r.p) {
		return 0, ErrTorn
	}
	v := binary.LittleEndian.Uint16(r.p[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.pos+4 > len(r.p) {
		return 0, ErrTorn
	}
	v := binary.LittleEndian.Uint32(r.p[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.pos+8 > len(r.p) {
		return 0, ErrTorn
	}
	v := binary.LittleEndian.Uint64(r.p[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if r.pos+int(n) > len(r.p) {
		return "", ErrTorn
	}
	s := string(r.p[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// writeMail writes envelope + body frames into lane and (unless
// WithSync(false)) syncs; the mail is durable when it returns.
func (s *Store) writeMail(lane Lane, env Envelope, body []byte) error {
	payload, err := encodeEnvelope(env)
	if err != nil {
		return err
	}
	// One buffer, one Write, one Sync: both frames land in a single
	// append, so a crash leaves either the whole mail or a torn file the
	// recovery scan drops.
	buf := make([]byte, 0, 8+len(payload)+len(body))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	f, err := s.fs.Create(s.path(lane, env.ID))
	if err != nil {
		return fmt.Errorf("spool: %s: %w", env.ID, err)
	}
	defer f.Close()
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("spool: %s: %w", env.ID, err)
	}
	if s.opts.sync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("spool: %s: %w", env.ID, err)
		}
	}
	return nil
}

// Append spools a new mail into the active lane.
func (s *Store) Append(env Envelope, body []byte) error {
	if env.ID == "" {
		return fmt.Errorf("spool: empty id")
	}
	return s.writeMail(LaneActive, env, body)
}

// Move relinks a mail from one lane to another without touching its
// content (link new, remove old). A crash between the two leaves the
// mail in both lanes; Recover resolves it by lane precedence.
func (s *Store) Move(id string, from, to Lane) error {
	oldp, newp := s.path(from, id), s.path(to, id)
	if err := s.fs.Link(oldp, newp); err != nil && !errors.Is(err, fsim.ErrExist) {
		return fmt.Errorf("spool: move %s: %w", id, err)
	}
	if err := s.fs.Remove(oldp); err != nil && !errors.Is(err, fsim.ErrNotExist) {
		return fmt.Errorf("spool: move %s: %w", id, err)
	}
	return nil
}

// Rewrite persists an updated envelope (attempts, retry time, remaining
// recipients) while moving the mail from one lane to another: the new
// lane gets a freshly written durable copy, then the old name goes. A
// crash mid-write leaves a torn file in the destination plus the intact
// source, which Recover resolves to the source copy — the update is
// atomic: old state or new, never neither.
func (s *Store) Rewrite(env Envelope, body []byte, from, to Lane) error {
	if err := s.writeMail(to, env, body); err != nil {
		return err
	}
	if from == to {
		return nil
	}
	if err := s.fs.Remove(s.path(from, env.ID)); err != nil && !errors.Is(err, fsim.ErrNotExist) {
		return fmt.Errorf("spool: rewrite %s: %w", env.ID, err)
	}
	return nil
}

// Ack removes a finished mail (delivered, bounced, or dropped) from its
// lane.
func (s *Store) Ack(id string, lane Lane) error {
	if err := s.fs.Remove(s.path(lane, id)); err != nil && !errors.Is(err, fsim.ErrNotExist) {
		return fmt.Errorf("spool: ack %s: %w", id, err)
	}
	return nil
}

// read loads and parses one spool file.
func (s *Store) read(lane Lane, id string) (Mail, error) {
	var m Mail
	f, err := s.fs.OpenRead(s.path(lane, id))
	if err != nil {
		return m, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return m, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return m, err
		}
	}
	envFrame, rest, err := frame(data)
	if err != nil {
		return m, err
	}
	env, err := decodeEnvelope(envFrame)
	if err != nil {
		return m, err
	}
	body, _, err := frame(rest)
	if err != nil {
		return m, err
	}
	if env.ID != id {
		return m, fmt.Errorf("%w: id mismatch (%s in file %s)", ErrTorn, env.ID, id)
	}
	m.Envelope = env
	m.Lane = lane
	m.Body = body
	return m, nil
}

// frame splits one length-prefixed frame off the front of data.
func frame(data []byte) (payload, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, ErrTorn
	}
	n := binary.LittleEndian.Uint32(data)
	if int64(4)+int64(n) > int64(len(data)) {
		return nil, nil, ErrTorn
	}
	return data[4 : 4+n], data[4+n:], nil
}

// LaneDepth returns the number of mails currently in a lane.
func (s *Store) LaneDepth(lane Lane) int {
	return len(s.fs.List(s.dir + "/" + string(lane) + "/"))
}

// Recover scans every lane and returns each surviving mail exactly once.
// Torn files are removed; a mail visible in two lanes (a crashed Move)
// is kept in the higher-precedence lane and removed from the other, so
// no mail is ever returned — or later delivered — twice.
func (s *Store) Recover() ([]Mail, RecoveryStats, error) {
	stats := RecoveryStats{Recovered: make(map[Lane]int)}
	var out []Mail
	seen := make(map[string]bool)
	for _, lane := range Lanes {
		prefix := s.dir + "/" + string(lane) + "/"
		for _, name := range s.fs.List(prefix) {
			id := name[len(prefix):]
			if seen[id] {
				// The losing half of a crashed lane move.
				stats.Duplicates++
				if err := s.fs.Remove(name); err != nil && !errors.Is(err, fsim.ErrNotExist) {
					return out, stats, err
				}
				continue
			}
			m, err := s.read(lane, id)
			if err != nil {
				if errors.Is(err, ErrTorn) {
					stats.Torn++
					if rerr := s.fs.Remove(name); rerr != nil && !errors.Is(rerr, fsim.ErrNotExist) {
						return out, stats, rerr
					}
					continue
				}
				return out, stats, fmt.Errorf("spool: recover %s: %w", id, err)
			}
			seen[id] = true
			stats.Recovered[lane]++
			out = append(out, m)
		}
	}
	return out, stats, nil
}
