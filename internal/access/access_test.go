package access

import (
	"fmt"
	"testing"
)

func TestAddUserAndValid(t *testing.T) {
	db := NewDB("dept.test")
	if err := db.AddUser("alice@dept.test"); err != nil {
		t.Fatal(err)
	}
	if !db.Valid("alice@dept.test") {
		t.Fatal("registered user invalid")
	}
	if !db.Valid("ALICE@DEPT.TEST") {
		t.Fatal("lookup should be case-insensitive")
	}
	if db.Valid("bob@dept.test") {
		t.Fatal("unregistered user valid")
	}
	if db.Valid("alice@other.test") {
		t.Fatal("foreign domain valid")
	}
}

func TestAddUserErrors(t *testing.T) {
	db := NewDB("dept.test")
	if err := db.AddUser("alice@elsewhere.test"); err == nil {
		t.Fatal("non-local domain accepted")
	}
	if err := db.AddUser("not-an-address"); err == nil {
		t.Fatal("malformed address accepted")
	}
}

func TestAliases(t *testing.T) {
	db := NewDB("dept.test")
	db.AddUser("alice@dept.test")
	if err := db.AddAlias("postmaster@dept.test", "alice@dept.test"); err != nil {
		t.Fatal(err)
	}
	got, ok := db.Resolve("postmaster@dept.test")
	if !ok || got != "alice@dept.test" {
		t.Fatalf("Resolve = %q, %v", got, ok)
	}
	// Chained alias.
	db.AddAlias("root@dept.test", "postmaster@dept.test")
	if got, ok := db.Resolve("root@dept.test"); !ok || got != "alice@dept.test" {
		t.Fatalf("chained Resolve = %q, %v", got, ok)
	}
	// Alias to a non-existent target is invalid at lookup time.
	db.AddAlias("void@dept.test", "ghost@dept.test")
	if db.Valid("void@dept.test") {
		t.Fatal("alias to missing mailbox valid")
	}
}

func TestAliasLoopTerminates(t *testing.T) {
	db := NewDB("dept.test")
	db.AddAlias("a@dept.test", "b@dept.test")
	db.AddAlias("b@dept.test", "a@dept.test")
	if db.Valid("a@dept.test") {
		t.Fatal("alias loop resolved as valid")
	}
}

func TestAliasErrors(t *testing.T) {
	db := NewDB("dept.test")
	if err := db.AddAlias("x@foreign.test", "y@dept.test"); err == nil {
		t.Fatal("alias in foreign domain accepted")
	}
	if err := db.AddAlias("bad", "y@dept.test"); err == nil {
		t.Fatal("malformed alias accepted")
	}
}

func TestAddDomainIdempotent(t *testing.T) {
	db := NewDB()
	db.AddDomain("d.test")
	db.AddUser("u@d.test")
	db.AddDomain("d.test") // must not wipe users
	if !db.Valid("u@d.test") {
		t.Fatal("AddDomain wiped existing users")
	}
	if !db.IsLocalDomain("D.TEST") || db.IsLocalDomain("other.test") {
		t.Fatal("IsLocalDomain wrong")
	}
}

func TestPopulate(t *testing.T) {
	db := NewDB()
	if err := Populate(db, "dept.test", 400); err != nil {
		t.Fatal(err)
	}
	if db.Users() != 400 {
		t.Fatalf("users = %d, want 400", db.Users())
	}
	if !db.Valid("user0000@dept.test") || !db.Valid("user0399@dept.test") {
		t.Fatal("populated users invalid")
	}
	if db.Valid("user0400@dept.test") {
		t.Fatal("out-of-range user valid")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := NewDB("d.test")
	done := make(chan bool)
	go func() {
		for i := 0; i < 500; i++ {
			db.AddUser(fmt.Sprintf("w%d@d.test", i))
		}
		done <- true
	}()
	for i := 0; i < 500; i++ {
		db.Valid(fmt.Sprintf("w%d@d.test", i))
	}
	<-done
	if db.Users() != 500 {
		t.Fatalf("users = %d", db.Users())
	}
}

func TestValidBytesMatchesValid(t *testing.T) {
	db := NewDB("d.test")
	db.AddUser("user@d.test")
	db.AddAlias("alias@d.test", "user@d.test")
	cases := []string{
		"user@d.test", "USER@D.TEST", " user@d.test ", "alias@d.test",
		"ALIAS@d.test", "ghost@d.test", "user@other.test", "user",
		"user@", "@d.test", "", "üser@d.test", "user@d.tesT",
	}
	for _, addr := range cases {
		if got, want := db.ValidBytes([]byte(addr)), db.Valid(addr); got != want {
			t.Errorf("ValidBytes(%q) = %v, Valid = %v", addr, got, want)
		}
	}
}

func TestValidBytesZeroAlloc(t *testing.T) {
	db := NewDB("d.test")
	db.AddUser("user@d.test")
	hit := []byte("USER@D.TEST")
	miss := []byte("ghost@d.test")
	allocs := testing.AllocsPerRun(1000, func() {
		if !db.ValidBytes(hit) {
			t.Fatal("hit missed")
		}
		if db.ValidBytes(miss) {
			t.Fatal("miss hit")
		}
	})
	if allocs != 0 {
		t.Fatalf("ValidBytes allocates %.1f times per pair, want 0", allocs)
	}
}
