// Package access implements the mail server's local recipient and alias
// database — the table smtpd consults to decide whether a "RCPT TO"
// address exists (§2: "smtpd also queries the local access database to
// find if the recipients of the mails exist or not"). The answer to that
// query is what separates legitimate deliveries from the §4.1 bounces,
// and in the hybrid architecture it is the trust signal that triggers
// delegation.
package access

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/smtp"
)

// DB is the recipient database: the set of local domains, the mailboxes
// within them, and aliases (postfix's local_recipient_maps plus
// alias_maps). Safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	domains map[string]map[string]bool // domain -> set of local parts
	aliases map[string]string          // canonical addr -> canonical addr
}

// NewDB returns a database serving the given local domains.
func NewDB(localDomains ...string) *DB {
	db := &DB{
		domains: make(map[string]map[string]bool),
		aliases: make(map[string]string),
	}
	for _, d := range localDomains {
		db.domains[strings.ToLower(d)] = make(map[string]bool)
	}
	return db
}

func canonical(addr string) string { return strings.ToLower(strings.TrimSpace(addr)) }

// AddDomain registers an additional local domain.
func (db *DB) AddDomain(domain string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	d := strings.ToLower(domain)
	if _, ok := db.domains[d]; !ok {
		db.domains[d] = make(map[string]bool)
	}
}

// AddUser registers a mailbox. The address's domain must be local.
func (db *DB) AddUser(addr string) error {
	a := canonical(addr)
	if err := smtp.ValidateAddress(a); err != nil {
		return fmt.Errorf("access: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	users, ok := db.domains[smtp.Domain(a)]
	if !ok {
		return fmt.Errorf("access: %q is not a local domain", smtp.Domain(a))
	}
	users[smtp.LocalPart(a)] = true
	return nil
}

// AddAlias maps from to to. The target must already be a valid recipient
// (possibly itself an alias); chains are resolved at lookup with a depth
// bound.
func (db *DB) AddAlias(from, to string) error {
	f, t := canonical(from), canonical(to)
	for _, a := range []string{f, t} {
		if err := smtp.ValidateAddress(a); err != nil {
			return fmt.Errorf("access: %w", err)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.domains[smtp.Domain(f)]; !ok {
		return fmt.Errorf("access: alias source domain %q not local", smtp.Domain(f))
	}
	db.aliases[f] = t
	return nil
}

// maxAliasDepth bounds alias chains; postfix similarly caps expansion to
// break loops.
const maxAliasDepth = 8

// Resolve canonicalizes addr, follows aliases, and reports whether the
// final target is an existing local mailbox. The returned address is the
// delivery target (the mailbox name is its local part).
func (db *DB) Resolve(addr string) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.resolveLocked(canonical(addr))
}

// resolveLocked is Resolve's body; the caller holds at least a read lock
// and passes an already-canonical address.
func (db *DB) resolveLocked(a string) (string, bool) {
	for i := 0; i <= maxAliasDepth; i++ {
		if users, ok := db.domains[smtp.Domain(a)]; ok && users[smtp.LocalPart(a)] {
			return a, true
		}
		next, ok := db.aliases[a]
		if !ok {
			return "", false
		}
		a = next
	}
	return "", false // alias loop or over-deep chain
}

// Valid reports whether addr resolves to an existing local mailbox — the
// smtpd RCPT check.
func (db *DB) Valid(addr string) bool {
	_, ok := db.Resolve(addr)
	return ok
}

// ValidBytes is Valid on a byte view, built for the server's
// zero-allocation RCPT path: the address is case-folded into a stack
// buffer and looked up with non-allocating map probes, so the trust
// decision for every probe a sinkhole workload throws costs no heap
// traffic. Addresses that are oversized or non-ASCII take the string
// path, whose Unicode canonicalization the fast path cannot reproduce.
func (db *DB) ValidBytes(addr []byte) bool {
	var buf [256]byte
	// Trim the blanks canonical() would.
	start, end := 0, len(addr)
	for start < end && (addr[start] == ' ' || addr[start] == '\t') {
		start++
	}
	for end > start && (addr[end-1] == ' ' || addr[end-1] == '\t') {
		end--
	}
	if end-start > len(buf) {
		return db.Valid(string(addr))
	}
	n := 0
	at := -1
	for i := start; i < end; i++ {
		c := addr[i]
		if c >= 0x80 {
			// Unicode addresses need ToLower's full folding.
			return db.Valid(string(addr))
		}
		if 'A' <= c && c <= 'Z' {
			c |= 0x20
		}
		if c == '@' && at < 0 {
			at = n
		}
		buf[n] = c
		n++
	}
	if at < 0 || at == n-1 {
		return false // no domain: never a local mailbox
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	// m[string(b)] map probes compile without allocating.
	if users, ok := db.domains[string(buf[at+1:n])]; ok && users[string(buf[:at])] {
		return true
	}
	next, ok := db.aliases[string(buf[:n])]
	if !ok {
		return false
	}
	// Alias chains are rare and their targets are already canonical
	// strings; follow them on the ordinary path.
	_, ok = db.resolveLocked(next)
	return ok
}

// IsLocalDomain reports whether the domain is served locally.
func (db *DB) IsLocalDomain(domain string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.domains[strings.ToLower(domain)]
	return ok
}

// Users returns the number of mailboxes across all local domains.
func (db *DB) Users() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, users := range db.domains {
		n += len(users)
	}
	return n
}

// Populate registers n mailboxes named user0000…user<n-1> under domain,
// the shape the workload generators and examples use (the paper's Univ
// server hosts "over 400 mailboxes").
func Populate(db *DB, domain string, n int) error {
	db.AddDomain(domain)
	for i := 0; i < n; i++ {
		if err := db.AddUser(fmt.Sprintf("user%04d@%s", i, domain)); err != nil {
			return err
		}
	}
	return nil
}
