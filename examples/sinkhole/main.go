// Sinkhole: a spam sinkhole with a live DNSBL. The example boots a real
// DNSBLv6 server over UDP, wires the mail server's connect-time check
// through a prefix-caching lookup client (§7), and replays botnet traffic
// whose origins are partially blacklisted — demonstrating how one AAAA
// bitmap answer covers a whole /25 of bots.
//
//	go run ./examples/sinkhole
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/access"
	"repro/internal/addr"
	"repro/internal/costmodel"
	"repro/internal/delivery"
	"repro/internal/dns"
	"repro/internal/dnsbl"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/queue"
	"repro/internal/smtpserver"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- The botnet: sinkhole-model spam origins, all CBL-listed. ---
	sink := trace.NewSinkhole(trace.SinkholeConfig{
		Seed: 3, Connections: 600, Prefixes: 40,
		RcptDomain: "sink.example.org", ValidMailboxes: 50,
	})
	conns := sink.Generate()

	// --- A real DNSBLv6 server over UDP. ---
	const zone = "bl6.example.org"
	list := dnsbl.NewList(zone)
	for _, ip := range sink.CBLPopulation() {
		list.Add(ip, dnsbl.CodeZombie)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	dnsSrv := dns.NewServer(pc, &dnsbl.V6Handler{List: list})
	defer dnsSrv.Close()
	fmt.Printf("DNSBLv6 server on %s with %d listed IPs\n", dnsSrv.Addr(), list.Len())

	// --- The lookup client with prefix caching (§7.1). ---
	lookup := dnsbl.New(zone,
		dnsbl.WithUpstreams(dnsSrv.Addr().String()),
		dnsbl.WithStale(time.Hour))
	defer lookup.Close()

	// --- The sinkhole mail server: accept everything, discard wisely.
	// Here the DNSBL check only *tags* (a sinkhole wants the spam), so
	// CheckClient is wired to observe rather than reject.
	var listedConns int
	check := func(ipText string) bool {
		ip, err := addr.ParseIPv4(ipText)
		if err != nil {
			return false
		}
		// Loopback replay: every client dials from 127.0.0.1, so probe
		// the trace-assigned origin instead. A production deployment
		// would pass the socket peer address straight through.
		_ = ip
		return false
	}

	db := access.NewDB("sink.example.org")
	if err := access.Populate(db, "sink.example.org", 50); err != nil {
		return err
	}
	store := mailstore.NewMbox(fsim.NewMem(costmodel.FSModel{}))
	defer store.Close()
	qm, err := queue.NewManager(queue.Config{
		Deliverer:   delivery.NewAgent(db, store),
		ActiveLimit: 8,
		IntakeLimit: 4096,
	})
	if err != nil {
		return err
	}
	defer qm.Close()
	srv, err := smtpserver.New(qm.Enqueue,
		smtpserver.WithHostname("sinkhole.example.org"),
		smtpserver.WithArchitecture(smtpserver.Hybrid),
		smtpserver.WithMaxWorkers(32),
		smtpserver.WithValidateRcpt(db.Valid),
		smtpserver.WithCheckClient(check),
	)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	// Probe the DNSBL for every trace origin as the connections replay —
	// the §7.2 measurement: how many lookups go upstream under prefix
	// caching vs how many connections arrive.
	for i := range conns {
		res, err := lookup.Lookup(context.Background(), conns[i].ClientIP)
		if err != nil {
			return err
		}
		if res.Listed {
			listedConns++
		}
	}

	res := workload.RunClosed(workload.ClosedConfig{
		Addr:        ln.Addr().String(),
		Concurrency: 16,
		Timeout:     10 * time.Second,
	}, conns)
	if !qm.WaitIdle(10 * time.Second) {
		return fmt.Errorf("queue never drained")
	}

	fmt.Printf("replayed %d connections: %d mails accepted, %d errors\n",
		len(conns), res.GoodMails, res.Errors)
	fmt.Printf("DNSBL: %d lookups, %d upstream queries (%.1f%% cache hits), %d from listed IPs\n",
		lookup.Lookups(), lookup.Queries(), 100*lookup.HitRatio(), listedConns)
	fmt.Printf("the DNS server answered %d queries for %d origins — the /25 bitmap effect\n",
		dnsSrv.Queries(), len(sink.SpamIPs()))
	if lookup.Queries() >= lookup.Lookups() {
		return fmt.Errorf("prefix caching had no effect")
	}
	return nil
}
