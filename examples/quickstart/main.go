// Quickstart: boot the spam-aware mail server (hybrid fork-after-trust
// architecture + MFS single-copy mailbox store) on a loopback port, send
// a couple of mails — one to multiple recipients, one random-guess bounce
// — and read the mailboxes back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/access"
	"repro/internal/costmodel"
	"repro/internal/delivery"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/queue"
	"repro/internal/smtp"
	"repro/internal/smtpserver"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Server side: access DB, MFS store, queue, hybrid front end. ---
	db := access.NewDB("example.org")
	for _, u := range []string{"alice@example.org", "bob@example.org", "carol@example.org"} {
		if err := db.AddUser(u); err != nil {
			return err
		}
	}

	store, err := mailstore.NewMFS(fsim.NewMem(costmodel.FSModel{}), "mfs")
	if err != nil {
		return err
	}
	defer store.Close()

	qm, err := queue.NewManager(queue.Config{
		Deliverer: delivery.NewAgent(db, store),
	})
	if err != nil {
		return err
	}
	defer qm.Close()

	srv, err := smtpserver.New(qm.Enqueue,
		smtpserver.WithHostname("mx.example.org"),
		smtpserver.WithArchitecture(smtpserver.Hybrid), // fork-after-trust (§5)
		smtpserver.WithValidateRcpt(db.Valid),
	)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln) //nolint:errcheck // exits on Close
	defer srv.Close()
	fmt.Println("server listening on", ln.Addr())

	// --- Client side: one spam-style multi-recipient mail... ---
	client, err := smtp.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		return err
	}
	if err := client.Helo("laptop.example.net"); err != nil {
		return err
	}
	accepted, err := client.Send("newsletter@lists.example.net",
		[]string{"alice@example.org", "bob@example.org", "carol@example.org"},
		[]byte("Subject: meeting notes\r\n\r\nSingle copy on disk, three mailboxes.\r\n"))
	if err != nil {
		return err
	}
	fmt.Printf("multi-recipient mail: %d recipients accepted\n", accepted)

	// ...and one random-guessing bounce (§4.1): every recipient draws
	// "550 User unknown", so the hybrid front end never commits a worker.
	accepted, err = client.Send("spam@bot.example.net",
		[]string{"admin@example.org", "test@example.org"}, []byte("junk"))
	if err != nil {
		return err
	}
	fmt.Printf("random-guess mail:    %d recipients accepted (bounced)\n", accepted)
	if err := client.Quit(); err != nil {
		return err
	}

	if !qm.WaitIdle(5 * time.Second) {
		return fmt.Errorf("queue never drained")
	}

	// --- Read the mailboxes back through the store API. ---
	for _, user := range []string{"alice", "bob", "carol"} {
		ids, err := store.List(user)
		if err != nil {
			return fmt.Errorf("list %s: %w", user, err)
		}
		body, err := store.Read(user, ids[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s got %d mail(s); first is %d bytes\n", user, len(ids), len(body))
	}

	// MFS stored the three-recipient mail once.
	st := store.Underlying().Stats()
	fmt.Printf("MFS shared store: %d record(s) serving %d mailbox pointer(s)\n",
		st.SharedRecords, st.SharedRefs)

	stats := srv.Stats()
	fmt.Printf("server: %d connection(s), %d delegated to workers, %d recipients rejected with 550\n",
		stats.Connections, stats.Handoffs, stats.RcptRejected)
	return nil
}
