// DNSBLv6: a stand-alone demonstration of the paper's prefix-based DNSBL
// (§7.1). It runs both blacklist schemes over real UDP — the classic
// per-IP zone and the DNSBLv6 bitmap zone — and queries both for the same
// set of bots, showing how the bitmap answer turns 128 potential queries
// into one.
//
//	go run ./examples/dnsblv6
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"repro/internal/addr"
	"repro/internal/dns"
	"repro/internal/dnsbl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		zone4 = "bl.example.org"
		zone6 = "bl6.example.org"
	)
	// A /25 neighbourhood with several listed bots (spatial locality,
	// Figure 12) plus one listed host elsewhere.
	list4, list6 := dnsbl.NewList(zone4), dnsbl.NewList(zone6)
	bots := []string{"203.0.113.5", "203.0.113.9", "203.0.113.77", "203.0.113.126", "198.51.100.20"}
	for _, b := range bots {
		ip := addr.MustParseIPv4(b)
		list4.Add(ip, dnsbl.CodeZombie)
		list6.Add(ip, dnsbl.CodeZombie)
	}

	handler := dns.HandlerFunc(func(q dns.Question) *dns.Message {
		if strings.HasSuffix(q.Name, zone6) {
			return (&dnsbl.V6Handler{List: list6}).Resolve(q)
		}
		return (&dnsbl.V4Handler{List: list4}).Resolve(q)
	})
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := dns.NewServer(pc, handler)
	defer srv.Close()
	fmt.Printf("DNSBL server on %s (zones %s, %s)\n\n", srv.Addr(), zone4, zone6)

	// Show the raw wire exchange once: the AAAA answer *is* the bitmap.
	tr := &dns.UDPTransport{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	probe := addr.MustParseIPv4("203.0.113.9")
	resp, err := tr.Query(context.Background(), dns.NewQuery(1, probe.V6Name(zone6), dns.TypeAAAA))
	if err != nil {
		return err
	}
	var bm addr.Bitmap128
	copy(bm[:], resp.Answers[0].RData)
	fmt.Printf("AAAA %s\n  -> bitmap %s (%d of 128 neighbours listed)\n\n",
		probe.V6Name(zone6), bm, bm.Count())

	// Query the whole /25 under each scheme and count upstream queries.
	prefix := probe.Prefix25()
	probes := make([]addr.IPv4, 0, 128)
	for i := 0; i < 128; i++ {
		probes = append(probes, prefix.Nth(i))
	}
	before := srv.Queries()
	for _, policy := range []dnsbl.CachePolicy{dnsbl.CacheIP, dnsbl.CachePrefix} {
		client := dnsbl.New(zoneFor(policy, zone4, zone6),
			dnsbl.WithTransport(tr), dnsbl.WithPolicy(policy))
		listed := 0
		for _, ip := range probes {
			res, err := client.Lookup(context.Background(), ip)
			if err != nil {
				return err
			}
			if res.Listed {
				listed++
			}
		}
		used := srv.Queries() - before
		before = srv.Queries()
		fmt.Printf("%-6s caching: %3d lookups over %s -> %3d DNS queries, %d listed\n",
			policy, len(probes), prefix, used, listed)
	}
	fmt.Println("\none bitmap answer resolves the whole /25 — the §7.1 effect")
	return nil
}

func zoneFor(p dnsbl.CachePolicy, z4, z6 string) string {
	if p == dnsbl.CachePrefix {
		return z6
	}
	return z4
}
