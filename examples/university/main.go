// University: run the departmental workload of the paper's Univ trace —
// a 67/33 spam/ham mix with bounces and unfinished transactions — against
// a real server over loopback TCP, comparing the vanilla and hybrid
// architectures on identical traffic.
//
//	go run ./examples/university
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/access"
	"repro/internal/costmodel"
	"repro/internal/delivery"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/queue"
	"repro/internal/smtpserver"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const domain = "dept.example.edu"

func run() error {
	// The departmental trace: >400 mailboxes, 67% spam, random-guess
	// bounces and abandoned handshakes mixed in (§4.1).
	conns := trace.NewUniv(trace.UnivConfig{Seed: 7, Connections: 1200}).Generate()
	st := trace.Summarize(conns)
	fmt.Printf("trace: %d connections, %.0f%% spam, %.0f%% bounces, %.0f%% unfinished\n",
		st.Connections,
		100*float64(st.SpamConns)/float64(st.Connections),
		100*st.BounceRatio(), 100*st.UnfinishedRatio())

	for _, arch := range []smtpserver.Architecture{smtpserver.Vanilla, smtpserver.Hybrid} {
		if err := serveTrace(arch, conns); err != nil {
			return err
		}
	}
	return nil
}

func serveTrace(arch smtpserver.Architecture, conns []trace.Conn) error {
	db := access.NewDB(domain)
	if err := access.Populate(db, domain, 400); err != nil {
		return err
	}
	store, err := mailstore.NewMFS(fsim.NewMem(costmodel.FSModel{}), "mfs")
	if err != nil {
		return err
	}
	defer store.Close()
	agent := delivery.NewAgent(db, store)
	qm, err := queue.NewManager(queue.Config{Deliverer: agent, ActiveLimit: 8, IntakeLimit: 4096})
	if err != nil {
		return err
	}
	defer qm.Close()
	srv, err := smtpserver.New(qm.Enqueue,
		smtpserver.WithHostname("mx."+domain),
		smtpserver.WithArchitecture(arch),
		smtpserver.WithMaxWorkers(32),
		smtpserver.WithValidateRcpt(db.Valid),
	)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	res := workload.RunClosed(workload.ClosedConfig{
		Addr:        ln.Addr().String(),
		Concurrency: 24,
		Timeout:     10 * time.Second,
	}, conns)
	if !qm.WaitIdle(10 * time.Second) {
		return fmt.Errorf("%s: queue never drained", arch)
	}

	s := srv.Stats()
	d := agent.Stats()
	fmt.Printf("\n%s architecture:\n", arch)
	fmt.Printf("  goodput %.0f mails/s over %v (replay is wall-clock, not the paper's testbed)\n",
		res.Goodput(), res.Elapsed.Round(time.Millisecond))
	fmt.Printf("  good=%d bounce=%d unfinished=%d errors=%d\n",
		res.GoodMails, res.BounceConns, res.Unfinished, res.Errors)
	fmt.Printf("  server: handoffs=%d pre-trust closes=%d rcpt-550=%d\n",
		s.Handoffs, s.PreTrustClosed, s.RcptRejected)
	fmt.Printf("  delivered %d mails into %d mailbox copies (MFS shared records: %d)\n",
		d.Mails, d.RcptDeliveries, store.Underlying().Stats().SharedRecords)
	if arch == smtpserver.Hybrid && s.Handoffs >= s.Connections {
		return fmt.Errorf("hybrid should not delegate every connection")
	}
	return nil
}
