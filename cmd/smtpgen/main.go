// Command smtpgen is the load generator: it replays a synthetic workload
// against a running SMTP server using either of the paper's two client
// models (Table 1).
//
//	smtpgen -addr 127.0.0.1:2525 -model closed -concurrency 50 -trace univ -conns 2000
//	smtpgen -addr 127.0.0.1:2525 -model open -rate 100 -trace sinkhole -conns 5000
//	smtpgen -addr 127.0.0.1:2525 -model closed -trace bounce -bounce 0.5 -conns 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		addrFlag  = flag.String("addr", "127.0.0.1:2525", "server address")
		model     = flag.String("model", "closed", "client model: closed (program 1) or open (program 2)")
		traceName = flag.String("trace", "univ", "workload: univ, sinkhole, or bounce")
		conns     = flag.Int("conns", 1000, "connections to replay")
		conc      = flag.Int("concurrency", 20, "closed model: concurrent connection slots")
		think     = flag.Duration("think", 0, "closed model: per-slot think time")
		rate      = flag.Float64("rate", 50, "open model: connections per second")
		bounce    = flag.Float64("bounce", 0.25, "bounce trace: bounce ratio")
		domain    = flag.String("domain", "dept.example.edu", "recipient domain")
		mailboxes = flag.Int("mailboxes", 400, "recipient mailbox count")
		seed      = flag.Uint64("seed", 1, "trace seed")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-step timeout")
	)
	flag.Parse()

	var tr []trace.Conn
	switch *traceName {
	case "univ":
		tr = trace.NewUniv(trace.UnivConfig{
			Seed: *seed, Connections: *conns, Domain: *domain, Mailboxes: *mailboxes,
		}).Generate()
	case "sinkhole":
		prefixes := *conns / 12
		if prefixes < 16 {
			prefixes = 16
		}
		tr = trace.NewSinkhole(trace.SinkholeConfig{
			Seed: *seed, Connections: *conns, Prefixes: prefixes,
			RcptDomain: *domain, ValidMailboxes: *mailboxes,
		}).Generate()
	case "bounce":
		tr = trace.BounceSweep(*seed, *conns, *bounce, *domain, *mailboxes)
	default:
		log.Fatalf("smtpgen: unknown trace %q", *traceName)
	}

	var res workload.Result
	start := time.Now()
	switch *model {
	case "closed":
		res = workload.RunClosed(workload.ClosedConfig{
			Addr: *addrFlag, Concurrency: *conc, Think: *think, Timeout: *timeout,
		}, tr)
	case "open":
		res = workload.RunOpen(workload.OpenConfig{
			Addr: *addrFlag, Rate: *rate, Timeout: *timeout,
		}, tr)
	default:
		log.Fatalf("smtpgen: unknown model %q", *model)
	}

	fmt.Printf("replayed %d connections in %v (%s model)\n", len(tr), time.Since(start).Round(time.Millisecond), *model)
	fmt.Printf("  good mails:   %d (%.1f mails/s goodput)\n", res.GoodMails, res.Goodput())
	fmt.Printf("  bounce conns: %d\n", res.BounceConns)
	fmt.Printf("  unfinished:   %d\n", res.Unfinished)
	fmt.Printf("  rejected:     %d (DNSBL)\n", res.Rejected)
	fmt.Printf("  errors:       %d\n", res.Errors)
	if res.Latency.Count() > 0 {
		fmt.Printf("  latency p50/p90: %.0fms / %.0fms\n",
			1000*res.Latency.Quantile(0.5), 1000*res.Latency.Quantile(0.9))
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}
