package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSpoolAppend-8     	 1108016	      2251 ns/op	    2746 B/op	       9 allocs/op
BenchmarkQueueThroughput-8 	  514088	      4886 ns/op	    204676 mails/s	    3843 B/op	      13 allocs/op
PASS
ok  	repro	6.806s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Package != "repro" {
		t.Errorf("header fields: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	sp := rep.Benchmarks[0]
	if sp.Name != "SpoolAppend" || sp.Iterations != 1108016 || sp.NsPerOp != 2251 ||
		sp.BytesPerOp != 2746 || sp.AllocsPerOp != 9 {
		t.Errorf("spool line parsed as %+v", sp)
	}
	if sp.OpsPerSec < 444000 || sp.OpsPerSec > 445000 {
		t.Errorf("ops/sec = %v, want ≈444247", sp.OpsPerSec)
	}
	qt := rep.Benchmarks[1]
	if qt.Name != "QueueThroughput" || qt.Metrics["mails/s"] != 204676 {
		t.Errorf("queue line parsed as %+v", qt)
	}
	if qt.AllocsPerOp != 13 {
		t.Errorf("allocs/op = %d, want 13", qt.AllocsPerOp)
	}
}

func TestParseBenchSubBenchAndNoise(t *testing.T) {
	res, ok := parseBench("BenchmarkMFSParallelDeliver/workers=4-8  100  5000 ns/op  12 mails/commit")
	if !ok {
		t.Fatal("sub-benchmark line must parse")
	}
	if res.Name != "MFSParallelDeliver/workers=4" {
		t.Errorf("name = %q", res.Name)
	}
	if res.Metrics["mails/commit"] != 12 {
		t.Errorf("metrics = %v", res.Metrics)
	}
	if _, ok := parseBench("BenchmarkBroken no numbers here"); ok {
		t.Error("garbage line must not parse")
	}
}

func TestSuiteName(t *testing.T) {
	cases := map[string]string{
		"BENCH_queue.json":          "queue",
		"artifacts/BENCH_smtp.json": "smtp",
		"custom.json":               "custom",
		"BENCH_all":                 "all",
	}
	for path, want := range cases {
		if got := suiteName(path); got != want {
			t.Errorf("suiteName(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestMergeFiles(t *testing.T) {
	dir := t.TempDir()
	queue := filepath.Join(dir, "BENCH_queue.json")
	smtp := filepath.Join(dir, "BENCH_smtp.json")
	writeJSON := func(path, body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeJSON(queue, `{"goos":"linux","benchmarks":[{"name":"QueueThroughput","iterations":10,"ns_per_op":4886,"ops_per_sec":204666,"metrics":{"mails/s":204676}}]}`)
	writeJSON(smtp, `{"goos":"linux","benchmarks":[{"name":"SMTPDialog","iterations":100,"ns_per_op":659,"ops_per_sec":1517450}]}`)

	m, err := mergeFiles([]string{queue, smtp})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Suites) != 2 {
		t.Fatalf("suites = %d, want 2", len(m.Suites))
	}
	q, ok := m.Suites["queue"]
	if !ok || len(q.Benchmarks) != 1 || q.Benchmarks[0].Name != "QueueThroughput" {
		t.Errorf("queue suite parsed as %+v", q)
	}
	if q.Benchmarks[0].Metrics["mails/s"] != 204676 {
		t.Errorf("queue metrics = %v", q.Benchmarks[0].Metrics)
	}
	s, ok := m.Suites["smtp"]
	if !ok || len(s.Benchmarks) != 1 || s.Benchmarks[0].Name != "SMTPDialog" {
		t.Errorf("smtp suite parsed as %+v", s)
	}

	// Two files collapsing to the same suite key: the later one wins, so
	// a freshly regenerated suite shadows the committed baseline.
	dup := filepath.Join(dir, "sub")
	if err := os.Mkdir(dup, 0o755); err != nil {
		t.Fatal(err)
	}
	writeJSON(filepath.Join(dup, "BENCH_queue.json"), `{"goos":"darwin","benchmarks":[]}`)
	m2, err := mergeFiles([]string{queue, filepath.Join(dup, "BENCH_queue.json")})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Suites["queue"].Goos; got != "darwin" {
		t.Errorf("duplicate suite: later file must win, got goos=%q", got)
	}
	if _, err := mergeFiles([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file must error")
	}
	writeJSON(filepath.Join(dir, "BENCH_bad.json"), `not json`)
	if _, err := mergeFiles([]string{filepath.Join(dir, "BENCH_bad.json")}); err == nil {
		t.Error("malformed JSON must error")
	}
}

func TestMergeSeedsFromPriorMergedDoc(t *testing.T) {
	dir := t.TempDir()
	writeJSON := func(path, body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A prior trajectory doc with two suites seeds the map; a fresh
	// single-suite file then overrides only the suite it covers.
	prior := filepath.Join(dir, "BENCH_all.json")
	writeJSON(prior, `{"suites":{
		"queue":{"goos":"linux","benchmarks":[{"name":"Old","iterations":1,"ns_per_op":1}]},
		"trace":{"goos":"linux","benchmarks":[{"name":"TraceSampledOut","iterations":1,"ns_per_op":2}]}}}`)
	fresh := filepath.Join(dir, "BENCH_queue.json")
	writeJSON(fresh, `{"goos":"linux","benchmarks":[{"name":"New","iterations":9,"ns_per_op":3}]}`)

	m, err := mergeFiles([]string{prior, fresh})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Suites) != 2 {
		t.Fatalf("suites = %d, want 2 (queue overridden, trace carried forward)", len(m.Suites))
	}
	if got := m.Suites["queue"].Benchmarks[0].Name; got != "New" {
		t.Errorf("queue suite = %q, want fresh file to override the seeded baseline", got)
	}
	if got := m.Suites["trace"].Benchmarks[0].Name; got != "TraceSampledOut" {
		t.Errorf("trace suite = %q, want it carried forward from the prior doc", got)
	}
}
