package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSpoolAppend-8     	 1108016	      2251 ns/op	    2746 B/op	       9 allocs/op
BenchmarkQueueThroughput-8 	  514088	      4886 ns/op	    204676 mails/s	    3843 B/op	      13 allocs/op
PASS
ok  	repro	6.806s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Package != "repro" {
		t.Errorf("header fields: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	sp := rep.Benchmarks[0]
	if sp.Name != "SpoolAppend" || sp.Iterations != 1108016 || sp.NsPerOp != 2251 ||
		sp.BytesPerOp != 2746 || sp.AllocsPerOp != 9 {
		t.Errorf("spool line parsed as %+v", sp)
	}
	if sp.OpsPerSec < 444000 || sp.OpsPerSec > 445000 {
		t.Errorf("ops/sec = %v, want ≈444247", sp.OpsPerSec)
	}
	qt := rep.Benchmarks[1]
	if qt.Name != "QueueThroughput" || qt.Metrics["mails/s"] != 204676 {
		t.Errorf("queue line parsed as %+v", qt)
	}
	if qt.AllocsPerOp != 13 {
		t.Errorf("allocs/op = %d, want 13", qt.AllocsPerOp)
	}
}

func TestParseBenchSubBenchAndNoise(t *testing.T) {
	res, ok := parseBench("BenchmarkMFSParallelDeliver/workers=4-8  100  5000 ns/op  12 mails/commit")
	if !ok {
		t.Fatal("sub-benchmark line must parse")
	}
	if res.Name != "MFSParallelDeliver/workers=4" {
		t.Errorf("name = %q", res.Name)
	}
	if res.Metrics["mails/commit"] != 12 {
		t.Errorf("metrics = %v", res.Metrics)
	}
	if _, ok := parseBench("BenchmarkBroken no numbers here"); ok {
		t.Error("garbage line must not parse")
	}
}
