// Command benchjson converts `go test -bench` output into a small JSON
// report, so CI can archive benchmark results as an artifact and diffs
// stay machine-readable:
//
//	go test -run '^$' -bench 'BenchmarkQueueThroughput|BenchmarkSpoolAppend' \
//	    -benchmem . | go run ./cmd/benchjson -o BENCH_queue.json
//
// For every benchmark line it records iterations, ns/op (plus the
// derived ops/sec), B/op and allocs/op when -benchmem is on, and any
// custom b.ReportMetric series under "metrics".
//
// With -merge it instead combines several suite files into one
// trajectory document, keyed by suite name (the file's basename without
// the BENCH_ prefix and .json suffix). Inputs may also be prior merged
// documents: their suites seed the map, and later arguments override
// earlier ones suite-by-suite. That makes the committed baselines the
// seed of the trajectory — a run that regenerates only some suites
// still emits a complete document, with fresh results shadowing stale:
//
//	go run ./cmd/benchjson -merge -o BENCH_all.json \
//	    BENCH_all.json BENCH_queue.json BENCH_smtp.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	OpsPerSec   float64            `json:"ops_per_sec"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	Package    string   `json:"package,omitempty"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Merged is the multi-suite trajectory document -merge writes.
type Merged struct {
	Suites map[string]Report `json:"suites"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	merge := flag.Bool("merge", false, "merge suite JSON files given as arguments instead of parsing bench output")
	flag.Parse()

	var doc any
	if *merge {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -merge needs suite files as arguments")
			os.Exit(1)
		}
		m, err := mergeFiles(flag.Args())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		doc = m
	} else {
		report, err := parse(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if len(report.Benchmarks) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
			os.Exit(1)
		}
		doc = report
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// mergeFiles loads suite reports — single-suite files or prior merged
// documents — and combines them keyed by suite name. Later arguments
// win on a suite-name collision, so a previously merged baseline given
// first seeds every suite and freshly regenerated files override only
// the suites they cover.
func mergeFiles(paths []string) (Merged, error) {
	m := Merged{Suites: make(map[string]Report, len(paths))}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return Merged{}, err
		}
		// A merged document folds in suite-by-suite.
		var prior Merged
		if err := json.Unmarshal(data, &prior); err == nil && prior.Suites != nil {
			for name, rep := range prior.Suites {
				m.Suites[name] = rep
			}
			continue
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return Merged{}, fmt.Errorf("%s: %w", path, err)
		}
		m.Suites[suiteName(path)] = rep
	}
	return m, nil
}

// suiteName derives the suite key from a report filename:
// "BENCH_queue.json" → "queue".
func suiteName(path string) string {
	base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return strings.TrimPrefix(base, "BENCH_")
}

// parse reads `go test -bench` output and collects benchmark lines,
// passing everything else through untouched metadata-wise (goos, cpu,
// pkg headers become report fields).
func parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBench(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	return rep, sc.Err()
}

// parseBench parses one benchmark result line, e.g.
//
//	BenchmarkSpoolAppend-8  1108016  2251 ns/op  2746 B/op  9 allocs/op
//	BenchmarkQueueThroughput-8  514088  4886 ns/op  204676 mails/s  ...
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	res := Result{Name: trimProcSuffix(strings.TrimPrefix(fields[0], "Benchmark"))}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			if v > 0 {
				res.OpsPerSec = 1e9 / v
			}
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, res.NsPerOp > 0
}

// trimProcSuffix drops the trailing -GOMAXPROCS from a benchmark name
// ("SpoolAppend-8" → "SpoolAppend"), keeping sub-benchmark paths intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
