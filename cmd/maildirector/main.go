// Command maildirector runs one front-end director node: it terminates
// client TCP, runs the whole pre-trust phase (policy verdict, DNSBL
// score, greylist) locally, and replays accepted envelopes to back-end
// delivery shards (cmd/smtpd instances) chosen by consistent-hashed
// recipient. Directors gossip their pre-trust state — reputation
// deltas, greylist tuples, DNSBL verdicts — so what one front end
// learns, all of them enforce.
//
// Quickstart, 2 front ends × 2 delivery shards (see README.md):
//
//	smtpd -addr :2501 -root /tmp/shard-a &
//	smtpd -addr :2502 -root /tmp/shard-b &
//	maildirector -addr :2525 -gossip-addr :7946 -peers 127.0.0.1:7947 \
//	    -backend shard-a=127.0.0.1:2501 -backend shard-b=127.0.0.1:2502 &
//	maildirector -addr :2526 -gossip-addr :7947 -peers 127.0.0.1:7946 \
//	    -backend shard-a=127.0.0.1:2501 -backend shard-b=127.0.0.1:2502 &
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admin"
	"repro/internal/director"
	"repro/internal/dnsbl"
	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/trace"
)

// backendFlags collects repeated -backend name=addr pairs.
type backendFlags []string

func (b *backendFlags) String() string { return strings.Join(*b, ",") }
func (b *backendFlags) Set(v string) error {
	*b = append(*b, v)
	return nil
}

func main() {
	var backends backendFlags
	flag.Var(&backends, "backend", "delivery shard as name=host:port (repeatable; name is hashed onto the ring)")
	var (
		listen     = flag.String("addr", "127.0.0.1:2525", "SMTP listen address")
		adminAddr  = flag.String("admin", "", "serve /metrics, /debug/vars, and /events on this address (empty disables)")
		hostname   = flag.String("hostname", "director.local", "banner hostname")
		domain     = flag.String("domain", "", "accept recipients at this domain only (empty accepts all)")
		vnodes     = flag.Int("vnodes", 64, "virtual nodes per shard on the recipient ring")
		cooldown   = flag.Duration("cooldown", 2*time.Second, "skip a failed shard for this long before re-probing")
		fwdTimeout = flag.Duration("forward-timeout", 10*time.Second, "back-end dial and replay command timeout")
		gossipAddr = flag.String("gossip-addr", "", "listen for peer anti-entropy exchanges on this address (empty disables)")
		peers      = flag.String("peers", "", "comma-separated peer gossip addresses to dial")
		gossipIvl  = flag.Duration("gossip-interval", time.Second, "anti-entropy exchange period")
		policyOn   = flag.Bool("policy", true, "run the pre-trust policy engine (rate limits, greylist, reputation)")
		greyRetry  = flag.Duration("grey-retry", time.Minute, "greylist minimum retry window (0 disables greylisting)")
		connRate   = flag.Float64("conn-rate", 2, "connections/sec admitted per client IP (0 disables rate limiting)")
		dnsblAddr  = flag.String("dnsbl", "", "comma-separated DNSBL replica addresses; empty disables")
		dnsblZone  = flag.String("dnsbl-zone", "bl.example.org", "DNSBL zone name")
		statsSec   = flag.Int("stats", 10, "stats period in seconds (0 disables)")
		logLevel   = flag.String("log", "info", "echo events at or above this level to stderr")

		traceSample = flag.Int("trace-sample", 0, "message-lifecycle tracing: mint a trace id for 1 in N client connections and propagate it to XTRACE-capable shards (0 disables; 1 traces everything); spans serve at /trace/{id} on -admin")
		nodeName    = flag.String("node", "", "node name stamped on message-trace spans (default: -hostname)")
	)
	flag.Parse()

	if len(backends) == 0 {
		log.Fatal("maildirector: at least one -backend name=addr is required")
	}

	reg := metrics.Default()
	stderrLevel, err := eventlog.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("maildirector: -log: %v", err)
	}
	evOpts := []eventlog.Option{eventlog.WithLevel(eventlog.LevelDebug)}
	if stderrLevel < eventlog.LevelOff {
		evOpts = append(evOpts, eventlog.WithSink(eventlog.NewTextSink(os.Stderr, stderrLevel)))
	}
	events := eventlog.New(evOpts...)

	// Node-local pre-trust stores, exposed to gossip through the
	// transport-agnostic sync contracts.
	rep := policy.NewReputation(policy.ReputationConfig{})
	var grey *policy.Greylist
	if *greyRetry > 0 {
		grey = policy.NewGreylist(policy.GreyConfig{MinRetry: *greyRetry})
	}

	var verd *director.Verdicts
	var scorer *policy.Scorer
	if *dnsblAddr != "" {
		client := dnsbl.New(*dnsblZone,
			dnsbl.WithRegistry(reg),
			dnsbl.WithEventLog(events),
			dnsbl.WithUpstreams(strings.Split(*dnsblAddr, ",")...),
			dnsbl.WithPolicy(dnsbl.CachePrefix))
		defer client.Close()
		// The gossip-shared verdict cache sits in front of the client:
		// a verdict any peer paid for is served locally.
		verd = director.NewVerdicts(client)
		scorer = policy.NewScorer(
			policy.WithLists(policy.List{Name: *dnsblZone, Resolver: verd, Weight: 1}),
			policy.WithThreshold(1),
			policy.WithScorerRegistry(reg),
		)
	}

	var pol *policy.ServerPolicy
	if *policyOn {
		pOpts := []policy.Option{policy.WithReputationStore(rep)}
		if grey != nil {
			pOpts = append(pOpts, policy.WithGreylistStore(grey))
		}
		if *connRate > 0 {
			pOpts = append(pOpts, policy.WithRate(policy.RateConfig{
				ConnPerSec: *connRate,
				ConnBurst:  5 * *connRate,
			}))
		}
		if scorer != nil {
			pOpts = append(pOpts, policy.WithDNSBLReject(1))
		}
		// WithClock(time.Now) stamps store entries with absolute wall
		// time, so deltas gossiped to peers decay on a shared timeline.
		pol = policy.NewServerPolicy(policy.New(pOpts...), scorer,
			policy.WithRegistry(reg), policy.WithEventLog(events),
			policy.WithClock(time.Now))
	}

	var mtrace *trace.MessageRecorder
	if *traceSample > 0 {
		node := *nodeName
		if node == "" {
			node = *hostname
		}
		mtrace = trace.NewMessageRecorder(node, 65536, *traceSample)
	}

	dOpts := []director.Option{
		director.WithHostname(*hostname),
		director.WithVnodes(*vnodes),
		director.WithCooldown(*cooldown),
		director.WithForwardTimeout(*fwdTimeout),
		director.WithRegistry(reg),
		director.WithEventLog(events),
	}
	if mtrace != nil {
		dOpts = append(dOpts, director.WithMessageTracer(mtrace))
	}
	for _, spec := range backends {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("maildirector: -backend %q is not name=addr", spec)
		}
		dOpts = append(dOpts, director.WithBackend(name, addr))
	}
	if pol != nil {
		dOpts = append(dOpts, director.WithPolicy(pol))
	}
	if *domain != "" {
		suffix := "@" + *domain
		dOpts = append(dOpts, director.WithValidateRcpt(func(a string) bool {
			return strings.HasSuffix(a, suffix)
		}))
	}
	d, err := director.New(dOpts...)
	if err != nil {
		log.Fatalf("maildirector: %v", err)
	}

	var gossip *director.Gossip
	if *gossipAddr != "" {
		gOpts := []director.GossipOption{
			director.WithGossipName(*hostname),
			director.WithInterval(*gossipIvl),
			director.WithReputationSync(rep),
			director.WithGossipEventLog(events),
		}
		if grey != nil {
			gOpts = append(gOpts, director.WithGreylistSync(grey))
		}
		if verd != nil {
			gOpts = append(gOpts, director.WithVerdicts(verd))
		}
		if *peers != "" {
			gOpts = append(gOpts, director.WithPeers(strings.Split(*peers, ",")...))
		}
		gossip = director.NewGossip(gOpts...)
		gln, err := net.Listen("tcp", *gossipAddr)
		if err != nil {
			log.Fatalf("maildirector: gossip listen: %v", err)
		}
		go gossip.Serve(gln)
		if *peers != "" {
			gossip.Start()
		}
		defer gossip.Close()
		events.Info("director.start", 0,
			eventlog.Str("component", "gossip"), eventlog.Str("addr", gln.Addr().String()))
	}

	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("maildirector: admin listen: %v", err)
		}
		adminOpts := []admin.HandlerOption{admin.WithEvents(events)}
		if mtrace != nil {
			adminOpts = append(adminOpts, admin.WithTrace(mtrace))
		}
		handler := admin.NewHandler(reg, trace.NewSpanRecorder(1024), adminOpts...)
		go http.Serve(adminLn, handler) //nolint:errcheck // dies with the process
		events.Info("director.start", 0,
			eventlog.Str("component", "admin"), eventlog.Str("addr", adminLn.Addr().String()))
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("maildirector: %v", err)
	}
	go d.Serve(ln)
	events.Info("director.start", 0,
		eventlog.Str("component", "director"),
		eventlog.Str("addr", *listen),
		eventlog.Str("shards", backends.String()),
	)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *statsSec > 0 {
		ticker := time.NewTicker(time.Duration(*statsSec) * time.Second)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-tick:
			logStats(d, gossip)
		case <-sigCh:
			events.Info("director.stop", 0, eventlog.Str("component", "director"))
			d.Close()
			logStats(d, gossip)
			return
		}
	}
}

// logStats dumps the director's counters and, when gossiping, the
// replication counters.
func logStats(d *director.Server, gossip *director.Gossip) {
	s := d.Stats()
	t := metrics.NewTable("counter", "value")
	t.AddRow("connections", s.Connections)
	t.AddRow("policy rejected (554)", s.PolicyRejected)
	t.AddRow("policy tempfailed (421)", s.PolicyTempfail)
	t.AddRow("mails forwarded", s.MailsForwarded)
	t.AddRow("mails tempfailed (451)", s.MailsFailed)
	t.AddRow("mails refused (554)", s.MailsRefused)
	t.AddRow("forward retries", s.ForwardRetries)
	t.AddRow("rcpt 550", s.RcptRejected)
	t.AddRow("rcpt skew (shard refused)", s.RcptSkew)
	t.AddRow("pre-trust closed", s.PreTrustClosed)
	t.AddRow("handoff p50 (ms)", 1000*d.HandoffQuantile(0.5))
	t.AddRow("handoff p99 (ms)", 1000*d.HandoffQuantile(0.99))
	if gossip != nil {
		g := gossip.Stats()
		t.AddRow("gossip exchanges", g.Exchanges)
		t.AddRow("gossip served", g.Served)
		t.AddRow("gossip failures", g.Failures)
		t.AddRow("entries merged (rep)", g.RepApplied)
		t.AddRow("entries merged (grey)", g.GreyApplied)
		t.AddRow("entries merged (verdicts)", g.VerdApplied)
	}
	fmt.Fprint(log.Writer(), t.String())
}
