package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/smtpserver"
	"repro/internal/telemetry"
)

// testAdmin builds a live admin endpoint backed by a real registry,
// event log, and telemetry tracker — the same wiring cmd/smtpd uses.
func testAdmin(t *testing.T) (*metrics.Registry, *eventlog.Log, *httptest.Server) {
	t.Helper()
	reg := metrics.NewRegistry()
	tr := telemetry.New()
	tr.Register(reg)
	log := eventlog.New(eventlog.WithLevel(eventlog.LevelDebug), eventlog.WithObserver(tr))
	srv := httptest.NewServer(admin.NewHandler(reg, nil, admin.WithEvents(log), admin.WithWorkload(tr)))
	t.Cleanup(srv.Close)
	return reg, log, srv
}

func TestFetchAndRenderFrame(t *testing.T) {
	reg, log, srv := testAdmin(t)

	// Populate stage latency histograms the way smtpserver does.
	bounds := []float64{0.001, 0.01, 0.1, 1}
	h := reg.Histogram(smtpserver.StageMetric, bounds, "arch", "hybrid", "stage", smtpserver.StageDialog)
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	reg.Counter("smtpd_connections_total", "arch", "hybrid").Add(7)

	// And workload telemetry through the event log.
	for i := 0; i < 3; i++ {
		log.Info("smtpd.conn", uint64(i+1),
			eventlog.Str("ip", "192.0.2.7"),
			eventlog.Str("outcome", "quit"),
			eventlog.Bool("worker", i == 0),
			eventlog.Bool("bounce", i > 0),
		)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	f, err := fetchFrame(client, srv.URL)
	if err != nil {
		t.Fatalf("fetchFrame: %v", err)
	}
	if f.workload == nil {
		t.Fatal("frame missing workload snapshot")
	}
	if f.workload.Conns != 3 || f.workload.Bounced != 2 {
		t.Fatalf("workload = %+v", f.workload)
	}

	var out strings.Builder
	render(&out, f)
	text := out.String()
	for _, want := range []string{
		"mailtop",
		"3 conns",
		"hybrid",
		smtpserver.StageDialog,
		"smtpd_connections_total (hybrid)",
		"192.0.2.7",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered frame missing %q:\n%s", want, text)
		}
	}
	// The p50 of 100 observations at 5ms must land inside the
	// (1ms, 10ms] bucket — the quantile math ParsePrometheus promises.
	if !strings.Contains(text, "100") {
		t.Fatalf("stage table missing count:\n%s", text)
	}
}

// TestFetchFrameNoWorkload degrades gracefully against an admin
// endpoint without the /workload route (older smtpd).
func TestFetchFrameNoWorkload(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("smtpd_connections_total", "arch", "vanilla").Add(1)
	srv := httptest.NewServer(admin.NewHandler(reg, nil))
	t.Cleanup(srv.Close)

	client := &http.Client{Timeout: 5 * time.Second}
	f, err := fetchFrame(client, srv.URL)
	if err != nil {
		t.Fatalf("fetchFrame: %v", err)
	}
	if f.workload != nil {
		t.Fatal("expected nil workload when /workload is absent")
	}
	var out strings.Builder
	render(&out, f)
	if !strings.Contains(out.String(), "smtpd_connections_total (vanilla)") {
		t.Fatalf("metrics-only frame missing counters:\n%s", out.String())
	}
}

func TestFetchFrameDown(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close()
	client := &http.Client{Timeout: time.Second}
	if _, err := fetchFrame(client, srv.URL); err == nil {
		t.Fatal("expected error against a closed endpoint")
	}
}
