// Command mailtop is a terminal console for a running smtpd: it polls
// the admin endpoint's /metrics and /workload routes and renders the
// live spam weather — per-stage latency quantiles for both
// architectures, the workload mix (bounce ratio, handoff savings),
// DNSBL /25-prefix locality, and the top talkers by source.
//
// Example:
//
//	smtpd -addr :2525 -admin 127.0.0.1:8025 ... &
//	mailtop -admin http://127.0.0.1:8025
//
// With -once it prints a single frame and exits (scripts, tests).
//
// Cluster mode aggregates message traces across a director tier: give
// it every node's admin endpoint and it renders per-stage latency by
// node, stitched from the spans each node retains (-trace-sample on
// the servers):
//
//	mailtop -cluster -peers http://127.0.0.1:8025,http://127.0.0.1:8026
//	mailtop -peers ... -trace 4f2a…   # one stitched trace as a span tree
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/smtpserver"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		adminURL  = flag.String("admin", "http://127.0.0.1:8025", "smtpd admin endpoint base URL")
		interval  = flag.Duration("interval", 2*time.Second, "poll interval")
		once      = flag.Bool("once", false, "render one frame and exit")
		cluster   = flag.Bool("cluster", false, "cluster mode: aggregate message traces across -peers and render per-stage latency by node")
		peersFlag = flag.String("peers", "", "comma-separated admin endpoints of every cluster node (directors and shards); default: just -admin")
		traceID   = flag.String("trace", "", "fetch one trace id from the cluster, render its stitched span tree, and exit")
	)
	flag.Parse()

	peers := strings.Split(*peersFlag, ",")
	if *peersFlag == "" {
		peers = []string{*adminURL}
	}
	if *traceID != "" {
		agg := telemetry.NewAggregator(peers, 5*time.Second)
		if err := renderTrace(os.Stdout, agg, *traceID); err != nil {
			fmt.Fprintf(os.Stderr, "mailtop: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *cluster {
		agg := telemetry.NewAggregator(peers, 5*time.Second)
		for {
			if !*once {
				fmt.Print("\x1b[2J\x1b[H") // clear and home
			}
			renderCluster(os.Stdout, agg)
			if *once {
				return
			}
			time.Sleep(*interval)
		}
	}

	base := strings.TrimSuffix(*adminURL, "/")
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		frame, err := fetchFrame(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mailtop: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear and home
		}
		render(os.Stdout, frame)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// frame is one fetched console frame.
type frame struct {
	metrics  []metrics.Metric
	workload *telemetry.Snapshot // nil when /workload is not mounted
	at       time.Time
}

// fetchFrame scrapes /metrics and /workload from the admin endpoint.
// A missing /workload (older smtpd, or no tracker wired) degrades to a
// metrics-only frame rather than failing.
func fetchFrame(client *http.Client, base string) (*frame, error) {
	f := &frame{at: time.Now()}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	f.metrics, err = metrics.ParsePrometheus(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse /metrics: %w", err)
	}
	wresp, err := client.Get(base + "/workload")
	if err == nil {
		defer wresp.Body.Close()
		if wresp.StatusCode == http.StatusOK {
			var s telemetry.Snapshot
			if err := json.NewDecoder(wresp.Body).Decode(&s); err != nil {
				return nil, fmt.Errorf("parse /workload: %w", err)
			}
			f.workload = &s
		}
	}
	return f, nil
}

// render draws one console frame.
func render(w io.Writer, f *frame) {
	fmt.Fprintf(w, "mailtop — %s\n\n", f.at.Format("15:04:05"))
	if f.workload != nil {
		renderWeather(w, f.workload)
	}
	renderStages(w, f.metrics)
	renderPipeline(w, f.metrics)
	if f.workload != nil {
		renderTalkers(w, f.workload)
	}
}

// renderWeather prints the headline spam-weather numbers.
func renderWeather(w io.Writer, s *telemetry.Snapshot) {
	fmt.Fprintf(w, "workload   %d conns   %d bounced   bounce ratio %.0f%% (ewma %.0f%%)   handoff savings %.0f%%\n",
		s.Conns, s.Bounced, 100*s.BounceRatio, 100*s.BounceRatioEWMA, 100*s.HandoffSavings)
	if len(s.Outcomes) > 0 {
		keys := make([]string, 0, len(s.Outcomes))
		for k := range s.Outcomes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "outcomes  ")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, s.Outcomes[k])
		}
		fmt.Fprintln(w)
	}
	if s.DNSBL.Lookups > 0 {
		fmt.Fprintf(w, "dnsbl      %d lookups   %d cache hits   /25 locality %.0f%%   cache savings est %.0f%%\n",
			s.DNSBL.Lookups, s.DNSBL.CacheHits, 100*s.DNSBL.PrefixLocality, 100*s.DNSBL.CacheSavingsEst)
	}
	fmt.Fprintln(w)
}

// renderStages prints per-stage latency quantiles from the
// smtpd_stage_seconds histograms, one row per (arch, stage).
func renderStages(w io.Writer, ms []metrics.Metric) {
	t := metrics.NewTable("arch", "stage", "count", "p50 ms", "p90 ms", "p99 ms")
	rows := 0
	for _, stage := range smtpserver.Stages() {
		for _, m := range ms {
			if m.Name != smtpserver.StageMetric || m.Kind != metrics.KindHistogram || m.Count == 0 {
				continue
			}
			if label(m, "stage") != stage {
				continue
			}
			t.AddRow(label(m, "arch"), stage, m.Count,
				1000*m.Quantile(0.5), 1000*m.Quantile(0.9), 1000*m.Quantile(0.99))
			rows++
		}
	}
	if rows > 0 {
		fmt.Fprint(w, t.String())
		fmt.Fprintln(w)
	}
}

// pipelineCounters is the cross-stage mail flow shown under the latency
// table: front end → queue → delivery.
var pipelineCounters = []string{
	"smtpd_connections_total",
	"smtpd_pretrust_closed_total",
	"smtpd_handoffs_total",
	"smtpd_mails_accepted_total",
	"queue_delivered_total",
	"queue_deferred_total",
	"delivery_rcpt_deliveries_total",
}

// renderPipeline prints the counter flow for every architecture serving.
func renderPipeline(w io.Writer, ms []metrics.Metric) {
	t := metrics.NewTable("counter", "value")
	rows := 0
	for _, name := range pipelineCounters {
		for _, m := range ms {
			if m.Name != name || m.Value == 0 {
				continue
			}
			display := name
			if a := label(m, "arch"); a != "" {
				display = name + " (" + a + ")"
			}
			t.AddRow(display, int64(m.Value))
			rows++
		}
	}
	if rows > 0 {
		fmt.Fprint(w, t.String())
		fmt.Fprintln(w)
	}
}

// renderTalkers prints the busiest sources.
func renderTalkers(w io.Writer, s *telemetry.Snapshot) {
	if len(s.TopTalkers) == 0 {
		return
	}
	t := metrics.NewTable("source", "conns")
	for _, talker := range s.TopTalkers {
		t.AddRow(talker.IP, talker.Conns)
	}
	fmt.Fprint(w, t.String())
}

// renderCluster draws one cluster-mode frame: per-(node, stage) message
// latency folded from every peer's retained spans, plus the most recent
// trace ids with their end-to-end wall time and node fan-out.
func renderCluster(w io.Writer, agg *telemetry.Aggregator) {
	fmt.Fprintf(w, "mailtop cluster — %s — %d peers\n\n",
		time.Now().Format("15:04:05"), len(agg.Peers()))
	spans := agg.FetchAllSpans(64)
	if len(spans) == 0 {
		fmt.Fprintln(w, "no message traces retained (are the servers running with -trace-sample?)")
		return
	}
	t := metrics.NewTable("node", "stage", "spans", "mean ms", "max ms")
	for _, row := range telemetry.StageLatencies(spans) {
		t.AddRow(row.Node, row.Stage, row.Count,
			1000*row.Mean().Seconds(), 1000*row.Max.Seconds())
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w)

	byTrace := make(map[string][]trace.MessageSpan)
	var order []string
	for _, sp := range spans {
		id := sp.TraceID()
		if _, ok := byTrace[id]; !ok {
			order = append(order, id)
		}
		byTrace[id] = append(byTrace[id], sp)
	}
	tt := metrics.NewTable("trace", "spans", "nodes", "total ms")
	shown := 0
	for _, id := range order {
		if shown >= 10 {
			break
		}
		ts := byTrace[id]
		nodes := make(map[string]bool)
		minStart, maxEnd := ts[0].Start, ts[0].End
		for _, sp := range ts {
			nodes[sp.Node] = true
			if sp.Start < minStart {
				minStart = sp.Start
			}
			if sp.End > maxEnd {
				maxEnd = sp.End
			}
		}
		tt.AddRow(id, len(ts), len(nodes), float64(maxEnd-minStart)/1e6)
		shown++
	}
	fmt.Fprint(w, tt.String())
	fmt.Fprintln(w, "\nmailtop -peers ... -trace <id> renders one stitched tree")
}

// renderTrace fetches one trace from every peer and prints its stitched
// span tree, children indented under parents, offsets relative to the
// trace's first span.
func renderTrace(w io.Writer, agg *telemetry.Aggregator, id string) error {
	spans, missing, err := agg.FetchTrace(id)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace %s: no spans on any peer (expired from the rings, or never sampled)", id)
	}
	start := spans[0].Start
	for _, sp := range spans {
		if sp.Start < start {
			start = sp.Start
		}
	}
	fmt.Fprintf(w, "trace %s — %d spans\n", id, len(spans))
	for _, peer := range missing {
		fmt.Fprintf(w, "  (no answer from %s — view may be partial)\n", peer)
	}
	var walk func(nodes []*trace.SpanTree, depth int)
	walk = func(nodes []*trace.SpanTree, depth int) {
		for _, n := range nodes {
			sp := n.Span
			fmt.Fprintf(w, "%+9.3fms %s%-9s %8.3fms  node=%s",
				float64(sp.Start-start)/1e6,
				strings.Repeat("  ", depth), sp.Stage,
				sp.Duration().Seconds()*1000, sp.Node)
			if sp.Note != "" {
				fmt.Fprintf(w, "  %s", sp.Note)
			}
			fmt.Fprintln(w)
			walk(n.Children, depth+1)
		}
	}
	walk(trace.BuildSpanTree(spans), 0)
	return nil
}

// label returns the value of one label on a parsed metric.
func label(m metrics.Metric, key string) string {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}
