package main

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/eventlog"
	"repro/internal/metrics"
)

// TestFollowEvents drives the -follow loop against a live admin
// endpoint: events emitted after the first poll round must still be
// printed (the since-cursor advances), and nothing is printed twice.
func TestFollowEvents(t *testing.T) {
	log := eventlog.New(eventlog.WithLevel(eventlog.LevelDebug))
	srv := httptest.NewServer(admin.NewHandler(metrics.NewRegistry(), nil, admin.WithEvents(log)))
	defer srv.Close()

	log.Info("smtpd.conn", 1, eventlog.Str("outcome", "quit"))
	log.Warn("dnsbl.stale", 2, eventlog.Str("zone", "bl.test"))

	var out strings.Builder
	var once sync.Once
	rounds := 0
	err := followEvents(srv.URL, "", 0, "", time.Millisecond, &out, func(printed int) bool {
		rounds++
		// After the first round drains the backlog, emit one more event
		// the cursor must pick up on a later round.
		once.Do(func() { log.Info("smtpd.conn", 3, eventlog.Str("outcome", "dropped")) })
		return printed >= 3 || rounds > 100
	})
	if err != nil {
		t.Fatalf("followEvents: %v", err)
	}

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("printed %d lines, want 3:\n%s", len(lines), out.String())
	}
	seen := map[string]bool{}
	for _, line := range lines {
		e, err := eventlog.ParseEvent(line)
		if err != nil {
			t.Fatalf("unparseable output line %q: %v", line, err)
		}
		key := line
		if seen[key] {
			t.Fatalf("duplicate line %q", line)
		}
		seen[key] = true
		if e.Name != "smtpd.conn" && e.Name != "dnsbl.stale" {
			t.Fatalf("unexpected event %q", e.Name)
		}
	}
	if !strings.Contains(out.String(), "outcome=dropped") {
		t.Fatalf("late event never tailed:\n%s", out.String())
	}
}

// TestFollowEventsFiltered forwards filters to the endpoint.
func TestFollowEventsFiltered(t *testing.T) {
	log := eventlog.New(eventlog.WithLevel(eventlog.LevelDebug))
	srv := httptest.NewServer(admin.NewHandler(metrics.NewRegistry(), nil, admin.WithEvents(log)))
	defer srv.Close()

	log.Debug("dnsbl.lookup", 7, eventlog.Bool("hit", true))
	log.Warn("queue.dead", 7, eventlog.Str("id", "m1"))
	log.Warn("queue.dead", 8, eventlog.Str("id", "m2"))

	var out strings.Builder
	err := followEvents(srv.URL, "warn", 7, "", time.Millisecond, &out, func(printed int) bool { return true })
	if err != nil {
		t.Fatalf("followEvents: %v", err)
	}
	body := out.String()
	if strings.Count(body, "evt ") != 1 || !strings.Contains(body, "id=m1") {
		t.Fatalf("filtered follow printed:\n%s", body)
	}

	if err := followEvents(srv.URL, "nonsense", 0, "", time.Millisecond, &out, nil); err == nil {
		t.Fatal("bad level must fail before polling")
	}
}
