// Command traceinfo generates one of the synthetic workloads and prints
// its statistics — the quickest way to see what the generators produce
// and how they compare with the published trace properties (Table 1,
// Figures 3, 4, 12, 13).
//
//	traceinfo -trace sinkhole -conns 20000
//	traceinfo -trace univ -conns 20000
//	traceinfo -trace ecn -days 365
//
// With -spans it instead reads a span stream (a server's /spans dump or
// log) and reconstructs per-connection lives: which stages each
// connection crossed, how long each took, and its final verdict.
//
//	curl -s localhost:8025/spans > spans.txt && traceinfo -spans spans.txt
//	traceinfo -spans -   # read the stream from stdin
//
// With -follow it tails a running server's event log instead: it polls
// the admin /events endpoint with a since-sequence cursor and prints
// each new event line as it arrives, like tail -f for the mail server.
//
//	traceinfo -follow http://localhost:8025
//	traceinfo -follow http://localhost:8025 -level warn -conn 42
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/addr"
	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	var (
		spansFile = flag.String("spans", "", "read a span stream from this file (\"-\" for stdin) instead of generating a trace")
		follow    = flag.String("follow", "", "tail the event log of the admin endpoint at this base URL")
		level     = flag.String("level", "", "follow: only events at or above this level")
		connID    = flag.Uint64("conn", 0, "follow: only events for this connection id")
		name      = flag.String("name", "", "follow: only events with this name")
		poll      = flag.Duration("poll", time.Second, "follow: poll interval")
		traceName = flag.String("trace", "sinkhole", "trace: sinkhole, univ, policy, or ecn")
		conns     = flag.Int("conns", 20000, "connections to generate")
		days      = flag.Int("days", 365, "ecn: days of daily ratios")
		seed      = flag.Uint64("seed", 1, "trace seed")
		spam      = flag.Float64("spam", 0.5, "policy: spam connection ratio")
		window    = flag.Duration("window", time.Hour, "sliding window for repeat-source ratios")
	)
	flag.Parse()

	if *follow != "" {
		if err := followEvents(*follow, *level, *connID, *name, *poll, os.Stdout, nil); err != nil {
			log.Fatalf("traceinfo: %v", err)
		}
		return
	}

	if *spansFile != "" {
		if err := describeSpans(*spansFile); err != nil {
			log.Fatalf("traceinfo: %v", err)
		}
		return
	}

	switch *traceName {
	case "ecn":
		pts := trace.ECNSeries(*seed, *days)
		var b, u float64
		for _, p := range pts {
			b += p.BounceRatio
			u += p.UnfinishedRatio
		}
		n := float64(len(pts))
		fmt.Printf("ECN series: %d days, mean bounce %.3f, mean unfinished %.3f\n",
			len(pts), b/n, u/n)
		return
	case "sinkhole":
		prefixes := *conns / 12
		if prefixes < 16 {
			prefixes = 16
		}
		s := trace.NewSinkhole(trace.SinkholeConfig{
			Seed: *seed, Connections: *conns, Prefixes: prefixes,
		})
		describe(s.Generate(), *window)
		perPrefix := make(map[addr.Prefix]int)
		for _, ip := range s.CBLPopulation() {
			perPrefix[ip.Prefix24()]++
		}
		counts := make([]int, 0, len(perPrefix))
		for _, n := range perPrefix {
			counts = append(counts, n)
		}
		fmt.Printf("blacklist population: %d IPs; /24s with >10 listed: %.0f%%, >100: %.1f%%\n",
			len(s.CBLPopulation()),
			100*trace.FractionAbove(counts, 10),
			100*trace.FractionAbove(counts, 100))
	case "univ":
		describe(trace.NewUniv(trace.UnivConfig{Seed: *seed, Connections: *conns}).Generate(), *window)
	case "policy":
		tr, listed := trace.PolicySweep(*seed, *conns, *spam, "dept.example.edu", 400)
		describe(tr, *window)
		fmt.Printf("DNSBL ground truth: %d listed sources\n", len(listed))
	default:
		log.Fatalf("traceinfo: unknown trace %q", *traceName)
	}
}

func describe(conns []trace.Conn, window time.Duration) {
	st := trace.Summarize(conns)
	t := metrics.NewTable("statistic", "value")
	t.AddRow("connections", st.Connections)
	t.AddRow("unique IPs", st.UniqueIPs)
	t.AddRow("unique /24 prefixes", st.UniquePref)
	t.AddRow("spam connections", st.SpamConns)
	t.AddRow("bounce connections", st.Bounces)
	t.AddRow("unfinished connections", st.Unfinished)
	t.AddRow("delivering connections", st.Delivering)
	t.AddRow("bounce ratio", st.BounceRatio())
	t.AddRow("unfinished ratio", st.UnfinishedRatio())
	t.AddRow("mean rcpts/delivering conn", st.MeanRcpts())
	fmt.Print(t.String())

	byIP, byPrefix := trace.Interarrivals(conns)
	if byIP.Count() > 0 && byPrefix.Count() > 0 {
		fmt.Printf("median interarrival: %.0fs per IP vs %.0fs per /24\n",
			byIP.Quantile(0.5), byPrefix.Quantile(0.5))
	}
	ipRatio, prefRatio := trace.RepeatRatios(conns, window)
	fmt.Printf("repeat sources within %v: %.1f%% by IP, %.1f%% by /25 — warm policy state on revisit\n",
		window, 100*ipRatio, 100*prefRatio)
}

// followEvents tails the /events route of an admin endpoint: each poll
// asks only for events past the last sequence number seen, so lines are
// printed exactly once and restarts of the tail never replay history it
// already showed. A nil stop follows forever; otherwise polling ends
// once stop(totalPrinted) reports true (tests use this).
func followEvents(base, level string, conn uint64, name string, poll time.Duration, w io.Writer, stop func(printed int) bool) error {
	q := url.Values{}
	if level != "" {
		if _, err := eventlog.ParseLevel(level); err != nil {
			return err
		}
		q.Set("level", level)
	}
	if conn != 0 {
		q.Set("conn", strconv.FormatUint(conn, 10))
	}
	if name != "" {
		q.Set("name", name)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	var since uint64
	printed := 0
	for {
		q.Set("since", strconv.FormatUint(since, 10))
		resp, err := client.Get(base + "/events?" + q.Encode())
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("GET /events: %s", resp.Status)
		}
		events, err := eventlog.ParseEvents(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var buf []byte
		for _, e := range events {
			buf = append(e.AppendText(buf[:0]), '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
			if e.Seq > since {
				since = e.Seq
			}
			printed++
		}
		if stop != nil && stop(printed) {
			return nil
		}
		time.Sleep(poll)
	}
}

// describeSpans reconstructs connection lives from a span stream and
// prints one lifeline per connection plus per-stage aggregates.
func describeSpans(path string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ParseSpans(r)
	if err != nil {
		return err
	}
	lives := trace.GroupSpans(events)
	if len(lives) == 0 {
		fmt.Println("no span events found")
		return nil
	}

	// Per-connection lifelines: conn id, total wall time, the stage
	// sequence with durations, and the final verdict.
	for _, life := range lives {
		fmt.Printf("conn %d  total %-12s", life.Conn, life.End()-life.Start())
		for i, e := range life.Events {
			if i > 0 {
				fmt.Print(" → ")
			} else {
				fmt.Print(" ")
			}
			fmt.Printf("%s %s", e.Stage, e.Duration().Round(time.Microsecond))
		}
		if v := life.Verdict(); v != "" {
			fmt.Printf("  [%s]", v)
		}
		fmt.Println()
	}

	// Per-stage aggregates across every connection.
	perStage := make(map[string]*metrics.Sample)
	var stages []string
	for _, e := range events {
		if e.Conn == 0 {
			continue
		}
		s, ok := perStage[e.Stage]
		if !ok {
			s = metrics.NewSample(0)
			perStage[e.Stage] = s
			stages = append(stages, e.Stage)
		}
		s.Observe(e.Duration().Seconds())
	}
	sort.Strings(stages)
	t := metrics.NewTable("stage", "events", "p50 (ms)", "p99 (ms)", "max (ms)")
	for _, name := range stages {
		s := perStage[name]
		t.AddRow(name, s.Count(), 1000*s.Quantile(0.5), 1000*s.Quantile(0.99), 1000*s.Max())
	}
	fmt.Printf("\n%d connections, %d span events\n", len(lives), len(events))
	fmt.Print(t.String())
	return nil
}
