// Command dnsbld runs a DNSBL DNS server over UDP, serving either the
// classic per-IP scheme (A queries on w.z.y.x.<zone>) or the paper's
// prefix-based DNSBLv6 (AAAA bitmap queries, §7.1) — or both zones at
// once.
//
// The blacklist population is either loaded from a file of dotted-quad
// addresses (one per line, '#' comments) or synthesized from the
// sinkhole model:
//
//	dnsbld -addr :5353 -zone bl.example.org -zone6 bl6.example.org -synth 2000
//	dnsbld -addr :5353 -zone bl.example.org -load blacklist.txt
package main

import (
	"bufio"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/addr"
	"repro/internal/dns"
	"repro/internal/dnsbl"
	"repro/internal/trace"
)

func main() {
	var (
		listen = flag.String("addr", "127.0.0.1:5353", "UDP listen address")
		zone   = flag.String("zone", "bl.example.org", "classic per-IP zone (empty disables)")
		zone6  = flag.String("zone6", "bl6.example.org", "DNSBLv6 bitmap zone (empty disables)")
		load   = flag.String("load", "", "file of blacklisted IPv4 addresses")
		synth  = flag.Int("synth", 0, "synthesize a blacklist population of ~N prefixes from the sinkhole model")
		seed   = flag.Uint64("seed", 1, "seed for -synth")

		// Fault injection: degrade the server's responses to exercise the
		// client's retry/hedge/stale machinery against a live upstream.
		loss      = flag.Float64("loss", 0, "fault: drop this fraction of responses [0,1)")
		dup       = flag.Float64("dup", 0, "fault: duplicate this fraction of responses [0,1)")
		reorder   = flag.Float64("reorder", 0, "fault: delay-and-swap this fraction of responses [0,1)")
		truncate  = flag.Float64("truncate", 0, "fault: truncate (TC bit, no answers) this fraction of responses [0,1)")
		faultSeed = flag.Uint64("fault-seed", 1, "fault: deterministic injection seed")
	)
	flag.Parse()

	ips, err := population(*load, *synth, *seed)
	if err != nil {
		log.Fatalf("dnsbld: %v", err)
	}

	v4list := dnsbl.NewList(*zone)
	v6list := dnsbl.NewList(*zone6)
	for _, ip := range ips {
		v4list.Add(ip, dnsbl.CodeSpamSrc)
		v6list.Add(ip, dnsbl.CodeSpamSrc)
	}

	handler := dns.HandlerFunc(func(q dns.Question) *dns.Message {
		switch {
		case *zone6 != "" && strings.HasSuffix(q.Name, *zone6):
			return (&dnsbl.V6Handler{List: v6list}).Resolve(q)
		case *zone != "" && strings.HasSuffix(q.Name, *zone):
			return (&dnsbl.V4Handler{List: v4list}).Resolve(q)
		default:
			m := &dns.Message{Questions: []dns.Question{q}, RCode: dns.RCodeRefused}
			return m
		}
	})

	pc, err := net.ListenPacket("udp", *listen)
	if err != nil {
		log.Fatalf("dnsbld: %v", err)
	}
	var faults *dns.FaultConn
	if *loss > 0 || *dup > 0 || *reorder > 0 || *truncate > 0 {
		faults = dns.NewFaultConn(pc, dns.FaultConfig{
			Loss: *loss, Duplicate: *dup, Reorder: *reorder,
			Truncate: *truncate, Seed: *faultSeed,
		})
		pc = faults
		log.Printf("dnsbld: fault injection on (loss=%.2f dup=%.2f reorder=%.2f truncate=%.2f seed=%d)",
			*loss, *dup, *reorder, *truncate, *faultSeed)
	}
	srv := dns.NewServer(pc, handler)
	log.Printf("dnsbld: serving %d blacklisted IPs on %s (v4 zone %q, v6 zone %q)",
		v4list.Len(), srv.Addr(), *zone, *zone6)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			log.Printf("dnsbld: %d queries served", srv.Queries())
			if faults != nil {
				fs := faults.Stats()
				log.Printf("dnsbld: faults injected: %d dropped, %d duplicated, %d reordered, %d truncated",
					fs.Dropped, fs.Duplicated, fs.Reordered, fs.Truncated)
			}
		case <-sigCh:
			log.Printf("dnsbld: shutting down after %d queries", srv.Queries())
			srv.Close()
			return
		}
	}
}

// population loads or synthesizes the blacklist contents.
func population(load string, synth int, seed uint64) ([]addr.IPv4, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var ips []addr.IPv4
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			ip, err := addr.ParseIPv4(line)
			if err != nil {
				return nil, err
			}
			ips = append(ips, ip)
		}
		return ips, sc.Err()
	}
	if synth <= 0 {
		synth = 500
	}
	s := trace.NewSinkhole(trace.SinkholeConfig{
		Seed:        seed,
		Connections: synth * 12,
		Prefixes:    synth,
	})
	return s.CBLPopulation(), nil
}
