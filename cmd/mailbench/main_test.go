package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig8", "fig10", "fig15", "combined", "tuning"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig4", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rcpts/conn") {
		t.Fatalf("fig4 output unexpected:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "nope"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNoModeIsError(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing mode accepted")
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var buf bytes.Buffer
	if err := run([]string{"-run", "table1", "-quick", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "testbed") {
		t.Fatalf("file output unexpected: %q", data)
	}
	// Output is mirrored to stdout too.
	if !strings.Contains(buf.String(), "testbed") {
		t.Fatal("stdout output missing")
	}
}

func TestSeedChangesGeneratedNumbers(t *testing.T) {
	render := func(seed string) string {
		var buf bytes.Buffer
		if err := run([]string{"-run", "fig4", "-quick", "-seed", seed}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a1, a2, b := render("1"), render("1"), render("2")
	if a1 != a2 {
		t.Fatal("same seed must reproduce identical output")
	}
	if a1 == b {
		t.Fatal("different seeds should change the synthetic trace")
	}
}
