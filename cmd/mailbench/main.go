// Command mailbench regenerates every table and figure of the paper's
// evaluation from the deterministic models in this repository.
//
// Usage:
//
//	mailbench -list               # show the experiment index
//	mailbench -run fig8           # run one experiment (full scale)
//	mailbench -run fig8 -quick    # ~1/10-scale run for fast iteration
//	mailbench -all                # run everything, in paper order
//	mailbench -all -quick -o out.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mailbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mailbench", flag.ContinueOnError)
	var (
		list  = fs.Bool("list", false, "list experiments and exit")
		runID = fs.String("run", "", "run a single experiment by id")
		all   = fs.Bool("all", false, "run every experiment")
		quick = fs.Bool("quick", false, "run at reduced scale (~1/10)")
		seed  = fs.Uint64("seed", 1, "random seed for all generators")
		out   = fs.String("o", "", "write output to a file instead of stdout")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	opts := core.Options{Quick: *quick, Seed: *seed}

	switch {
	case *list:
		fmt.Fprintf(w, "%-22s %s\n", "ID", "TITLE")
		for _, e := range core.Experiments() {
			fmt.Fprintf(w, "%-22s %s\n", e.ID, e.Title)
			fmt.Fprintf(w, "%-22s   paper: %s\n", "", e.Paper)
		}
		return nil
	case *runID != "":
		e, ok := core.Find(*runID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *runID)
		}
		fmt.Fprintf(w, "=== %s — %s ===\npaper: %s\n\n", e.ID, e.Title, e.Paper)
		_, err := e.Run(w, opts)
		return err
	case *all:
		_, err := core.RunAll(w, opts)
		return err
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -run, or -all is required")
	}
}
