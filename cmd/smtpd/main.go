// Command smtpd runs the spam-aware mail server over real TCP: either
// architecture, a populated recipient database, an optional DNSBL check,
// a postfix-style queue pipeline, and one of the four mailbox stores.
//
// Example:
//
//	smtpd -addr :2525 -arch hybrid -store mfs -root /tmp/mail \
//	      -domain dept.example.edu -mailboxes 400
//
// The server logs a stats line every few seconds and on shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/access"
	"repro/internal/addr"
	"repro/internal/admin"
	"repro/internal/bounce"
	"repro/internal/delivery"
	"repro/internal/dnsbl"
	"repro/internal/eventlog"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/metrics"
	"repro/internal/mfs"
	"repro/internal/policy"
	"repro/internal/pop3"
	"repro/internal/queue"
	"repro/internal/smtpserver"
	"repro/internal/spool"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		listen      = flag.String("addr", "127.0.0.1:2525", "listen address")
		adminAddr   = flag.String("admin", "", "serve /metrics, /debug/vars, /debug/pprof, and /spans on this address (empty disables)")
		archName    = flag.String("arch", "hybrid", "architecture: vanilla or hybrid")
		storeName   = flag.String("store", "mfs", "mailbox store: mbox, maildir, hardlink, mfs")
		root        = flag.String("root", "", "mail root directory (required)")
		domain      = flag.String("domain", "dept.example.edu", "local domain")
		mailboxes   = flag.Int("mailboxes", 400, "number of local user mailboxes (user0000…)")
		workers     = flag.Int("workers", 100, "smtpd worker limit")
		shards      = flag.Int("accept-shards", 1, "independent accept shards, each with its own listener (SO_REUSEPORT on Linux) and worker ring; 1 keeps the classic single accept loop")
		pop3Addr    = flag.String("pop3", "", "also serve POP3 on this address (empty disables)")
		dnsblAddr   = flag.String("dnsbl", "", "comma-separated DNSBL replica addresses (host:port,...); empty disables")
		dnsblZone   = flag.String("dnsbl-zone", "bl.example.org", "DNSBL zone name")
		dnsblHedge  = flag.Duration("dnsbl-hedge", 20*time.Millisecond, "hedge DNSBL queries to the next replica after this delay (0 disables)")
		dnsblStale  = flag.Duration("dnsbl-stale", time.Hour, "serve expired DNSBL cache entries up to this long past expiry when the blacklist is unreachable (0 disables)")
		statsSec    = flag.Int("stats", 10, "stats period in seconds (0 disables)")
		spoolDir    = flag.String("spool-dir", "queue", "spool directory (under -root) holding the active/deferred/hold lanes")
		mfsSync     = flag.Bool("mfs-sync", false, "MFS: write-ahead log every commit batch (crash-consistent durable mode; one fsync per batch)")
		ckptDir     = flag.String("checkpoint-dir", "", "MFS: write online checkpoints under this directory (under -root; empty disables)")
		ckptEvery   = flag.Duration("checkpoint-interval", 5*time.Minute, "MFS: interval between online checkpoints when -checkpoint-dir is set")
		maxAttempts = flag.Int("max-attempts", 3, "delivery attempts before a mail bounces")
		bounceOn    = flag.Bool("bounce", true, "synthesize DSN bounces for undeliverable mail (off: drop dead)")
		policyOn    = flag.Bool("policy", false, "enable the pre-trust policy engine (rate limits, greylist, reputation; DNSBL scoring when -dnsbl is set)")
		traceSample = flag.Int("trace-sample", 0, "message-lifecycle tracing: trace 1 in N accepted edge connections (0 disables; 1 traces everything); spans serve at /trace/{id} on -admin")
		nodeName    = flag.String("node", "", "node name stamped on message-trace spans (default: the -domain MX hostname)")
		greyRetry   = flag.Duration("grey-retry", time.Minute, "policy: greylist minimum retry window (0 disables greylisting)")
		connRate    = flag.Float64("conn-rate", 2, "policy: connections/sec admitted per client IP (0 disables rate limiting)")

		eventsLevel  = flag.String("events-level", "info", "event log ring retention level: debug, info, warn, error, or off")
		eventsCap    = flag.Int("events-cap", 4096, "event log ring capacity (events retained for /events)")
		eventsSample = flag.String("events-sample", "dnsbl.lookup=16,smtpd.policy=16", "per-event-name 1-in-N sampling, comma-separated name=N pairs (empty disables)")
		logLevel     = flag.String("log", "info", "echo events at or above this level to stderr: debug, info, warn, error, or off (postfix-style per-connection lines at info)")
	)
	flag.Parse()

	if *root == "" {
		log.Fatal("smtpd: -root is required")
	}
	if err := os.MkdirAll(*root, 0o755); err != nil {
		log.Fatalf("smtpd: %v", err)
	}
	fs := fsim.NewOS(*root)

	// Every component shares the process-wide default registry, so the
	// admin endpoint exposes the whole pipeline — accept to mailbox
	// commit — under one scrape. The span recorder keeps the last 64k
	// stage events for /spans and cmd/traceinfo.
	reg := metrics.Default()
	spans := trace.NewSpanRecorder(65536)
	// Per-source telemetry gauges are bounded by the tracker itself, but
	// the registry's cardinality guard is the backstop: no label key can
	// accumulate more than 64 values, the rest fold into "other".
	reg.SetLabelValueLimit(64)

	// The structured event log is the process's one logging path: every
	// component emits into it, the ring serves /events, the telemetry
	// tracker observes it for /workload, and -log echoes it to stderr.
	ringLevel, err := eventlog.ParseLevel(*eventsLevel)
	if err != nil {
		log.Fatalf("smtpd: -events-level: %v", err)
	}
	stderrLevel, err := eventlog.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("smtpd: -log: %v", err)
	}
	tracker := telemetry.New()
	tracker.Register(reg)
	evOpts := []eventlog.Option{
		eventlog.WithLevel(ringLevel),
		eventlog.WithCapacity(*eventsCap),
		eventlog.WithObserver(tracker),
	}
	if stderrLevel < eventlog.LevelOff {
		evOpts = append(evOpts, eventlog.WithSink(eventlog.NewTextSink(os.Stderr, stderrLevel)))
	}
	for _, kv := range strings.Split(*eventsSample, ",") {
		if kv == "" {
			continue
		}
		name, nStr, ok := strings.Cut(kv, "=")
		if !ok {
			log.Fatalf("smtpd: -events-sample: %q is not name=N", kv)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 1 {
			log.Fatalf("smtpd: -events-sample: bad rate in %q", kv)
		}
		evOpts = append(evOpts, eventlog.WithSampling(name, n))
	}
	events := eventlog.New(evOpts...)

	var arch smtpserver.Architecture
	switch *archName {
	case "vanilla":
		arch = smtpserver.Vanilla
	case "hybrid":
		arch = smtpserver.Hybrid
	default:
		log.Fatalf("smtpd: unknown architecture %q", *archName)
	}

	var store mailstore.Store
	switch *storeName {
	case "mbox":
		store = mailstore.NewMbox(fs)
	case "maildir":
		store = mailstore.NewMaildir(fs)
	case "hardlink":
		store = mailstore.NewHardlink(fs)
	case "mfs":
		var mfsStore *mailstore.MFS
		mfsStore, err = mailstore.NewMFS(fs, "mfs", mfs.WithSync(*mfsSync))
		if err != nil {
			log.Fatalf("smtpd: %v", err)
		}
		if rs := mfsStore.Recovery(); rs != (mfs.RecoveryStats{}) {
			log.Printf("smtpd: mfs recovery: replayed %d WAL records (%d bytes, %d torn tail), reconciled=%v refs_fixed=%d pointers_dropped=%d torn_dropped=%d shared_dropped=%d",
				rs.Replayed, rs.ReplayedBytes, rs.DiscardedTail, rs.Reconciled,
				rs.RefsFixed, rs.PointersDropped, rs.TornDropped, rs.SharedDropped)
		}
		if *ckptDir != "" {
			go func() {
				for i := 0; ; i++ {
					time.Sleep(*ckptEvery)
					dest := fmt.Sprintf("%s/ckpt%06d", *ckptDir, i)
					st, err := mfsStore.Checkpoint(dest)
					if err != nil {
						log.Printf("smtpd: checkpoint %s: %v", dest, err)
						continue
					}
					log.Printf("smtpd: checkpoint %s: %d files, %d bytes", dest, st.Files, st.Bytes)
				}
			}()
		}
		store = mfsStore
	default:
		log.Fatalf("smtpd: unknown store %q", *storeName)
	}
	defer store.Close()

	db := access.NewDB(*domain)
	if err := access.Populate(db, *domain, *mailboxes); err != nil {
		log.Fatalf("smtpd: %v", err)
	}
	if err := db.AddAlias("postmaster@"+*domain, fmt.Sprintf("user%04d@%s", 0, *domain)); err != nil {
		log.Fatalf("smtpd: %v", err)
	}

	// The message-trace recorder is shared by every pipeline stage in
	// this process; nil (tracing off) makes every span call a no-op.
	var mtrace *trace.MessageRecorder
	if *traceSample > 0 {
		node := *nodeName
		if node == "" {
			node = "mx." + *domain
		}
		mtrace = trace.NewMessageRecorder(node, 65536, *traceSample)
	}

	agent := delivery.NewAgent(db, store, delivery.WithRegistry(reg), delivery.WithEventLog(events),
		delivery.WithMessageTracer(mtrace))
	qcfg := queue.Config{
		Deliverer:   agent,
		Store:       spool.New(fs, *spoolDir),
		ActiveLimit: 8,
		MaxAttempts: *maxAttempts,
		Registry:    reg,
		Events:      events,
		Tracer:      mtrace,
	}
	if *bounceOn {
		qcfg.Bounce = bounce.New("mx." + *domain).Synthesize
	}
	qm, err := queue.NewManager(qcfg)
	if err != nil {
		log.Fatalf("smtpd: %v", err)
	}
	defer qm.Close()

	srvOpts := []smtpserver.Option{
		smtpserver.WithHostname("mx." + *domain),
		smtpserver.WithArchitecture(arch),
		smtpserver.WithMaxWorkers(*workers),
		smtpserver.WithAcceptShards(*shards),
		smtpserver.WithValidateRcpt(db.Valid),
		smtpserver.WithValidateRcptBytes(db.ValidBytes),
		smtpserver.WithRegistry(reg),
		smtpserver.WithSpans(spans),
		smtpserver.WithEventLog(events),
	}
	if mtrace != nil {
		srvOpts = append(srvOpts,
			smtpserver.WithMessageTracer(mtrace),
			smtpserver.WithEnqueueTraced(qm.EnqueueTraced))
	}
	var dnsblClient *dnsbl.Client
	if *dnsblAddr != "" {
		// The resilient resolver stack: one shared pipelined socket per
		// replica, hedged queries across them, and stale bitmaps served
		// when every replica is down.
		dnsblClient = dnsbl.New(*dnsblZone,
			dnsbl.WithRegistry(reg),
			dnsbl.WithEventLog(events),
			dnsbl.WithUpstreams(strings.Split(*dnsblAddr, ",")...),
			dnsbl.WithHedge(*dnsblHedge),
			dnsbl.WithStale(*dnsblStale),
			dnsbl.WithNegativeTTL(5*time.Second),
			dnsbl.WithPolicy(dnsbl.CachePrefix))
		defer dnsblClient.Close()
	}
	var pol *policy.ServerPolicy
	if *policyOn {
		pOpts := []policy.Option{policy.WithReputation(policy.ReputationConfig{})}
		if *connRate > 0 {
			pOpts = append(pOpts, policy.WithRate(policy.RateConfig{
				ConnPerSec: *connRate,
				ConnBurst:  5 * *connRate,
			}))
		}
		if *greyRetry > 0 {
			pOpts = append(pOpts, policy.WithGreylist(policy.GreyConfig{MinRetry: *greyRetry}))
		}
		var scorer *policy.Scorer
		if dnsblClient != nil {
			pOpts = append(pOpts, policy.WithDNSBLReject(1))
			scorer = policy.NewScorer(
				policy.WithLists(policy.List{Name: *dnsblZone, Resolver: dnsblClient, Weight: 1}),
				policy.WithThreshold(1),
				policy.WithScorerRegistry(reg),
			)
		}
		pol = policy.NewServerPolicy(policy.New(pOpts...), scorer,
			policy.WithRegistry(reg), policy.WithEventLog(events))
		srvOpts = append(srvOpts, smtpserver.WithPolicy(pol))
	} else if dnsblClient != nil {
		// Without the policy engine the DNSBL check is the bare
		// accept-time hook.
		srvOpts = append(srvOpts, smtpserver.WithCheckClient(func(ip string) bool {
			parsed, err := addr.ParseIPv4(ip)
			if err != nil {
				return false
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			res, err := dnsblClient.Lookup(ctx, parsed)
			if err != nil {
				// Fail open: a DNSBL outage must not stop mail.
				return false
			}
			return res.Listed
		}))
	}

	srv, err := smtpserver.New(qm.Enqueue, srvOpts...)
	if err != nil {
		log.Fatalf("smtpd: %v", err)
	}

	if *pop3Addr != "" {
		pop, err := pop3.New(pop3.Config{Store: store, Hostname: "pop." + *domain})
		if err != nil {
			log.Fatalf("smtpd: %v", err)
		}
		ln, err := net.Listen("tcp", *pop3Addr)
		if err != nil {
			log.Fatalf("smtpd: pop3 listen: %v", err)
		}
		go pop.Serve(ln) //nolint:errcheck // exits on Close
		defer pop.Close()
		events.Info("smtpd.start", 0,
			eventlog.Str("component", "pop3"), eventlog.Str("addr", *pop3Addr))
	}

	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("smtpd: admin listen: %v", err)
		}
		adminOpts := []admin.HandlerOption{
			admin.WithEvents(events), admin.WithWorkload(tracker)}
		if mtrace != nil {
			adminOpts = append(adminOpts, admin.WithTrace(mtrace))
		}
		handler := admin.NewHandler(reg, spans, adminOpts...)
		go func() {
			if err := http.Serve(adminLn, handler); err != nil {
				events.Error("smtpd.error", 0,
					eventlog.Str("component", "admin"), eventlog.Str("err", err.Error()))
			}
		}()
		events.Info("smtpd.start", 0,
			eventlog.Str("component", "admin"), eventlog.Str("addr", adminLn.Addr().String()))
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*listen) }()

	events.Info("smtpd.start", 0,
		eventlog.Str("component", "smtpd"),
		eventlog.Str("arch", arch.String()),
		eventlog.Str("store", store.Name()),
		eventlog.Str("domain", *domain),
		eventlog.Str("addr", *listen),
	)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsSec > 0 {
		ticker = time.NewTicker(time.Duration(*statsSec) * time.Second)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-tick:
			logStats(srv, qm, agent, pol)
		case err := <-done:
			if err != nil {
				log.Fatalf("smtpd: %v", err)
			}
			return
		case <-sigCh:
			events.Info("smtpd.stop", 0, eventlog.Str("component", "smtpd"))
			if err := srv.Close(); err != nil {
				events.Error("smtpd.error", 0,
					eventlog.Str("component", "smtpd"), eventlog.Str("err", err.Error()))
			}
			qm.WaitIdle(5 * time.Second)
			logStats(srv, qm, agent, pol)
			return
		}
	}
}

// logStats dumps a counters table: the SMTP front end (policy verdicts
// included), the queue pipeline, and delivery.
func logStats(srv *smtpserver.Server, qm *queue.Manager, agent *delivery.Agent, pol *policy.ServerPolicy) {
	s := srv.Stats()
	q := qm.Stats()
	d := agent.Stats()
	t := metrics.NewTable("counter", "value")
	t.AddRow("connections", s.Connections)
	t.AddRow("mails accepted", s.MailsAccepted)
	t.AddRow("pre-trust closed", s.PreTrustClosed)
	t.AddRow("handoffs", s.Handoffs)
	t.AddRow("rcpt 550", s.RcptRejected)
	t.AddRow("blacklisted (hook)", s.Blacklisted)
	if pol != nil {
		ps := pol.Stats()
		t.AddRow("policy conn rejected (554)", s.PolicyRejected)
		t.AddRow("policy conn tempfailed (421)", s.PolicyTempfail)
		t.AddRow("policy mail/rcpt 450", s.Greylisted)
		t.AddRow("rcpts passed policy", ps.RcptAllowed)
		t.AddRow("rcpts greylisted", ps.RcptGreylisted)
		t.AddRow("bounces recorded", ps.BouncesSeen)
		t.AddRow("admit p50 (ms)", 1000*pol.AdmitLatencyQuantile(0.5))
		t.AddRow("admit p99 (ms)", 1000*pol.AdmitLatencyQuantile(0.99))
		if sc := pol.ScorerStats(); sc.Scans > 0 {
			t.AddRow("dnsbl scans", sc.Scans)
			t.AddRow("dnsbl hits", sc.Hits)
			t.AddRow("dnsbl early exits", sc.EarlyExits)
		}
	}
	t.AddRow("queued", q.Enqueued)
	t.AddRow("delivered", q.Delivered)
	t.AddRow("deferred", q.Deferred)
	t.AddRow("bounced (DSN)", q.Bounced)
	t.AddRow("held", q.Held)
	t.AddRow("mailbox writes", d.RcptDeliveries)
	fmt.Fprint(log.Writer(), t.String())
}
