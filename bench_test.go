package repro

// One benchmark per table/figure of the paper's evaluation — each runs
// the corresponding experiment from internal/core and reports its
// headline numbers as custom metrics — plus micro-benchmarks for the hot
// paths of every substrate.
//
//	go test -bench=. -benchmem
//
// Benchmarks run experiments at Quick (~1/10) scale; `go run
// ./cmd/mailbench -all` regenerates the full-scale numbers recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dns"
	"repro/internal/dnsbl"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/mfs"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/smtp"
	"repro/internal/smtpserver"
	"repro/internal/spool"
	"repro/internal/trace"
)

// benchExperiment runs a registered experiment b.N times and reports the
// chosen metrics (metric name -> reported unit suffix).
func benchExperiment(b *testing.B, id string, report map[string]string) {
	b.Helper()
	e, ok := core.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var m core.Metrics
	var err error
	for i := 0; i < b.N; i++ {
		m, err = e.Run(io.Discard, core.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	for key, unit := range report {
		v, ok := m[key]
		if !ok {
			b.Fatalf("metric %q missing from %s", key, id)
		}
		b.ReportMetric(v, unit)
	}
}

// --- Section 3: tuning ---

func BenchmarkTuning(b *testing.B) {
	benchExperiment(b, "tuning", map[string]string{
		"peak_goodput": "peak-mails/s",
		"goodput_500":  "at500-mails/s",
		"goodput_1000": "at1000-mails/s",
	})
}

// --- Figure 3: ECN bounce series ---

func BenchmarkFig3ECNBounces(b *testing.B) {
	benchExperiment(b, "fig3", map[string]string{
		"mean_bounce":     "bounce-ratio",
		"mean_unfinished": "unfinished-ratio",
	})
}

// --- Figure 4: recipients per connection ---

func BenchmarkFig4RecipientCDF(b *testing.B) {
	benchExperiment(b, "fig4", map[string]string{
		"mean_rcpts": "rcpts/conn",
	})
}

// --- Figure 5: DNSBL latency ---

func BenchmarkFig5DNSBLLatency(b *testing.B) {
	benchExperiment(b, "fig5", map[string]string{
		"over100_min": "minfrac>100ms",
		"over100_max": "maxfrac>100ms",
	})
}

// --- Figure 8: hybrid vs vanilla goodput ---

func BenchmarkFig8ForkAfterTrust(b *testing.B) {
	benchExperiment(b, "fig8", map[string]string{
		"vanilla_0.50":      "vanilla@0.5-mails/s",
		"hybrid_0.50":       "hybrid@0.5-mails/s",
		"switch_ratio_0.50": "switch-ratio",
	})
}

// --- Figures 10/11: mailbox stores ---

func BenchmarkFig10StoresExt3(b *testing.B) {
	benchExperiment(b, "fig10", map[string]string{
		"mbox_15":                 "mbox-writes/s",
		"mfs_15":                  "mfs-writes/s",
		"vanilla_speedup_1_to_15": "mbox-speedup",
		"mfs_gain_15":             "mfs-gain",
	})
}

func BenchmarkFig11StoresReiser(b *testing.B) {
	benchExperiment(b, "fig11", map[string]string{
		"mfs_vs_hardlink_15": "vs-hardlink",
		"mfs_vs_maildir_15":  "vs-maildir",
	})
}

func BenchmarkMFSSinkholeThroughput(b *testing.B) {
	benchExperiment(b, "mfs-sinkhole", map[string]string{
		"mfs_gain": "gain",
	})
}

// --- Figures 12/13: origin locality ---

func BenchmarkFig12PrefixInfestation(b *testing.B) {
	benchExperiment(b, "fig12", map[string]string{
		"frac_gt_10":  "frac>10",
		"frac_gt_100": "frac>100",
	})
}

func BenchmarkFig13Interarrivals(b *testing.B) {
	benchExperiment(b, "fig13", map[string]string{
		"median_ip_gap":     "ip-gap-s",
		"median_prefix_gap": "prefix-gap-s",
	})
}

// --- Figures 14/15: DNSBL caching ---

func BenchmarkFig14PrefixCachingThroughput(b *testing.B) {
	benchExperiment(b, "fig14", map[string]string{
		"gain_200": "gain@200",
		"ip_200":   "ip-mails/s",
	})
}

func BenchmarkFig15CacheHitRatios(b *testing.B) {
	benchExperiment(b, "fig15", map[string]string{
		"hit_ip":          "ip-hit",
		"hit_prefix":      "prefix-hit",
		"query_reduction": "query-cut",
	})
}

// --- Section 8: combined ---

func BenchmarkCombinedOptimizations(b *testing.B) {
	benchExperiment(b, "combined", map[string]string{
		"gain_spam":     "spam-gain",
		"gain_univ":     "univ-gain",
		"querycut_spam": "spam-query-cut",
	})
}

// --- Outbound outage extension ---

func BenchmarkOutboundOutage(b *testing.B) {
	benchExperiment(b, "outbound-outage", map[string]string{
		"amplification_hybrid": "attempts/mail",
		"drain_ms_hybrid":      "drain-ms",
		"peak_spool_hybrid":    "peak-spool",
	})
}

// --- Director tier scale-out ---

func BenchmarkDirectorScaleout(b *testing.B) {
	benchExperiment(b, "director-scaleout", map[string]string{
		"accept_rate_gossip": "accept-rate",
		"cache_hit_lift":     "cache-hit-lift",
		"handoff_p99_ms":     "handoff-p99-ms",
		"lost_gossip":        "lost-mails",
	})
}

// --- Ablations ---

func BenchmarkAblationTrustPoint(b *testing.B) {
	benchExperiment(b, "ablation-trustpoint", map[string]string{
		"after-rcpt": "after-rcpt-mails/s",
		"after-mail": "after-mail-mails/s",
	})
}

func BenchmarkAblationVectorSend(b *testing.B) {
	benchExperiment(b, "ablation-vectorsend", map[string]string{
		"vector-send": "vector-mails/s",
	})
}

func BenchmarkAblationBitmapWidth(b *testing.B) {
	benchExperiment(b, "ablation-bitmapwidth", map[string]string{
		"hit_25": "hit/25",
		"hit_24": "hit/24",
	})
}

func BenchmarkAblationTTL(b *testing.B) {
	benchExperiment(b, "ablation-ttl", map[string]string{
		"prefix_hit_24h0m0s": "prefix-hit-24h",
	})
}

func BenchmarkAblationRefcount(b *testing.B) {
	benchExperiment(b, "ablation-refcount", map[string]string{
		"sharing_gain_15": "sharing-gain",
	})
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: substrate hot paths.

func BenchmarkMFSNWrite15Recipients(b *testing.B) {
	store, err := mailstore.NewMFS(fsim.NewMem(costmodel.FSModel{}), "mfs")
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	rcpts := make([]string, 15)
	for i := range rcpts {
		rcpts[i] = fmt.Sprintf("u%02d", i)
	}
	body := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Deliver(fmt.Sprintf("Q%016X", i), rcpts, body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMFSParallelDeliver measures parallel delivery into one MFS
// store at several worker counts. The headline metric is throughput in
// mails per metered disk-second on the Ext3 model with synced commits:
// more workers coalesce into larger group commits, amortizing the append
// and fsync charges (the paper's disk is the bottleneck, not the CPU).
func BenchmarkMFSParallelDeliver(b *testing.B) {
	const nRcpts = 3
	body := make([]byte, 4096)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fs := fsim.NewMem(costmodel.Ext3)
			store, err := mailstore.NewMFS(fs, "mfs", mfs.WithSync(true))
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			b.ResetTimer()
			var wg sync.WaitGroup
			var seq atomic.Int64
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := seq.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						rcpts := make([]string, nRcpts)
						for j := range rcpts {
							rcpts[j] = fmt.Sprintf("u%02d", (i*nRcpts+int64(j))%64)
						}
						if err := store.Deliver(fmt.Sprintf("Q%016X", i), rcpts, body); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if sec := fs.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "mails/disk-s")
			}
			cs := store.Store().CommitStats()
			if cs.Batches > 0 {
				b.ReportMetric(float64(cs.Mails)/float64(cs.Batches), "mails/commit")
			}
		})
	}
}

func BenchmarkMboxDeliver15Recipients(b *testing.B) {
	store := mailstore.NewMbox(fsim.NewMem(costmodel.FSModel{}))
	defer store.Close()
	rcpts := make([]string, 15)
	for i := range rcpts {
		rcpts[i] = fmt.Sprintf("u%02d", i)
	}
	body := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.Deliver(fmt.Sprintf("Q%016X", i), rcpts, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSEncodeDecode(b *testing.B) {
	q := dns.NewQuery(7, "4.3.2.1.bl.example.org", dns.TypeA)
	r := q.Reply()
	r.Answers = append(r.Answers, dns.ARecord(q.Questions[0].Name, 86400, 127, 0, 0, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := r.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dns.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSBLBitmap(b *testing.B) {
	list := dnsbl.NewList("bl6.test")
	sink := trace.NewSinkhole(trace.SinkholeConfig{Seed: 1, Connections: 1200, Prefixes: 100})
	for _, ip := range sink.CBLPopulation() {
		list.Add(ip, dnsbl.CodeSpamSrc)
	}
	prefixes := sink.Prefixes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := prefixes[i%len(prefixes)]
		_ = list.Bitmap(p.Nth(0).Prefix25())
	}
}

func BenchmarkSMTPSessionDialog(b *testing.B) {
	cfg := smtp.Config{Hostname: "mx.test"}
	lines := [][]byte{
		[]byte("HELO client.test"),
		[]byte("MAIL FROM:<s@remote.test>"),
		[]byte("RCPT TO:<a@local.test>"),
		[]byte("RCPT TO:<b@local.test>"),
		[]byte("DATA"),
	}
	quit := []byte("QUIT")
	body := make([]byte, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := smtp.AcquireSession(cfg)
		for _, l := range lines {
			s.CommandBytes(l)
		}
		s.FinishData(body)
		s.CommandBytes(quit)
		smtp.ReleaseSession(s)
	}
}

func BenchmarkSMTPParseCommand(b *testing.B) {
	line := []byte("RCPT TO:<user0042@dept.example.edu>")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smtp.ParseCommand(line); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// SMTP hot-path benchmarks (cmd/benchjson turns these into BENCH_smtp.json).

// benchLoopRW serves one script forever on the read side and discards
// writes — the in-memory stand-in for a pipelining client that never
// stops sending.
type benchLoopRW struct {
	script []byte
	off    int
}

func (l *benchLoopRW) Read(p []byte) (int, error) {
	if l.off == len(l.script) {
		l.off = 0
	}
	n := copy(p, l.script[l.off:])
	l.off += n
	return n, nil
}

func (l *benchLoopRW) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkSMTPDialog drives the full per-command hot path — buffered
// line read, byte parse, session state machine, preformatted reply,
// batched flush — over the pre-trust command mix of a sinkhole workload
// (no DATA: envelope materialization is the one deliberately allocating
// step, and bounce dialogs never reach it). The benchmark is its own
// regression gate: it fails if the steady state allocates at all, the
// bound CI pins.
func BenchmarkSMTPDialog(b *testing.B) {
	script := []byte("HELO client.example\r\n" +
		"MAIL FROM:<probe@spam.example>\r\n" +
		"RCPT TO:<good@valid.example>\r\n" +
		"RCPT TO:<ghost@trap.example>\r\n" +
		"RSET\r\n")
	const cmds = 5
	validSuffix := []byte("@valid.example")
	rw := &benchLoopRW{script: script}
	c := smtp.NewConn(rw)
	sess := smtp.NewSession(smtp.Config{
		Hostname: "mx.bench.example",
		ValidateRcptBytes: func(addr []byte) bool {
			return len(addr) > len(validSuffix) &&
				string(addr[len(addr)-len(validSuffix):]) == string(validSuffix)
		},
	})
	run := func() {
		for i := 0; i < cmds; i++ {
			line, err := c.ReadLine()
			if err != nil {
				b.Fatalf("ReadLine: %v", err)
			}
			reply, _ := sess.CommandBytes(line)
			if err := c.WriteReplyLazy(reply); err != nil {
				b.Fatalf("WriteReplyLazy: %v", err)
			}
		}
		if err := c.Flush(); err != nil {
			b.Fatalf("Flush: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warmup: grow buffers, size the recipient index
	}
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		b.Fatalf("steady-state dialog allocates %.1f times per %d commands, want 0", allocs, cmds)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)*cmds/sec, "cmds/s")
	}
	b.ReportMetric(0, "allocs/cmd")
}

// BenchmarkTraceSampledOut proves tracing is free when it loses the
// sampling coin flip: the full per-mail call sequence — Mint at the
// connection edge, then the NewSpan/FinishAt pair every pipeline stage
// issues (forward, smtp, queue, delivery, store) — wrapped around the
// same pre-trust dialog as BenchmarkSMTPDialog, with a recorder whose
// sampling excludes every connection. Like that benchmark it is its
// own regression gate: any allocation on the sampled-out path fails it.
func BenchmarkTraceSampledOut(b *testing.B) {
	script := []byte("HELO client.example\r\n" +
		"MAIL FROM:<probe@spam.example>\r\n" +
		"RCPT TO:<good@valid.example>\r\n" +
		"RCPT TO:<ghost@trap.example>\r\n" +
		"RSET\r\n")
	const cmds = 5
	rw := &benchLoopRW{script: script}
	c := smtp.NewConn(rw)
	sess := smtp.NewSession(smtp.Config{Hostname: "mx.bench.example"})
	// 1-in-2^30 sampling: the mint counter never reaches the modulus
	// inside the benchmark, so every dialog runs the sampled-out path.
	rec := trace.NewMessageRecorder("bench-node", 64, 1<<30)
	now := time.Now()
	stages := []string{
		trace.MStageForward, trace.MStageSMTP, trace.MStageQueue,
		trace.MStageDelivery, trace.MStageStore,
	}
	run := func() {
		tc := rec.Mint() // zero Context: connection lost the coin flip
		for i := 0; i < cmds; i++ {
			line, err := c.ReadLine()
			if err != nil {
				b.Fatalf("ReadLine: %v", err)
			}
			reply, _ := sess.CommandBytes(line)
			if err := c.WriteReplyLazy(reply); err != nil {
				b.Fatalf("WriteReplyLazy: %v", err)
			}
		}
		if err := c.Flush(); err != nil {
			b.Fatalf("Flush: %v", err)
		}
		// The downstream stage calls the pipeline issues per mail, all
		// no-ops on the zero context.
		for _, stage := range stages {
			sp := rec.NewSpan(tc)
			rec.FinishAt(sp, stage, now, now, "bench")
		}
	}
	for i := 0; i < 3; i++ {
		run() // warmup: grow buffers
	}
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		b.Fatalf("sampled-out traced dialog allocates %.1f times per %d commands, want 0", allocs, cmds)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)*cmds/sec, "cmds/s")
	}
	b.ReportMetric(0, "allocs/cmd")
	if got := len(rec.Spans()); got != 0 {
		b.Fatalf("sampled-out run recorded %d spans, want 0", got)
	}
}

// BenchmarkSMTPAcceptShards measures sinkhole connection turnover over
// real TCP — connect, pipelined bounce dialog (HELO, MAIL, rejected
// RCPT, QUIT), disconnect — against the hybrid server with 1 accept
// shard vs one per core. The headline metric is conns/s/core; sharding
// only buys throughput when there are cores for the shards, so on a
// single-core host the two sub-benchmarks measure the same thing (the
// recorded trajectory makes that visible rather than hiding it).
func BenchmarkSMTPAcceptShards(b *testing.B) {
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	} else {
		counts = append(counts, 2) // fallback-path coverage even on 1 core
	}
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchAcceptShards(b, shards)
		})
	}
}

func benchAcceptShards(b *testing.B, shards int) {
	srv, err := smtpserver.New(
		func(sender string, rcpts []string, data []byte) (string, error) { return "Q1", nil },
		smtpserver.WithHostname("mx.bench"),
		smtpserver.WithArchitecture(smtpserver.Hybrid),
		smtpserver.WithAcceptShards(shards),
		smtpserver.WithMaxWorkers(4*shards),
		smtpserver.WithValidateRcptBytes(func(addr []byte) bool { return false }),
		smtpserver.WithIdleTimeout(10*time.Second),
	)
	if err != nil {
		b.Fatal(err)
	}
	lns, err := smtpserver.ListenShards("127.0.0.1:0", shards)
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeListeners(lns) //nolint:errcheck // exits on Close
	defer srv.Close()
	addr := lns[0].Addr().String()

	// The whole bounce dialog in one pipelined burst; the server batches
	// the replies and the client reads until the 221 closes the dialog.
	script := []byte("HELO sink.example\r\n" +
		"MAIL FROM:<probe@spam.example>\r\n" +
		"RCPT TO:<victim@target.example>\r\n" +
		"QUIT\r\n")
	drivers := 4 * shards
	var seq atomic.Int64
	var failures atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < drivers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for seq.Add(1) <= int64(b.N) {
				nc, err := net.Dial("tcp", addr)
				if err != nil {
					failures.Add(1)
					continue
				}
				if _, err := nc.Write(script); err != nil {
					failures.Add(1)
					nc.Close()
					continue
				}
				for {
					if _, err := nc.Read(buf); err != nil {
						break // server closed after 221
					}
				}
				nc.Close()
			}
		}()
	}
	wg.Wait()
	if f := failures.Load(); f > int64(b.N)/10 {
		b.Fatalf("%d/%d connections failed", f, b.N)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		cps := float64(b.N) / sec
		b.ReportMetric(cps, "conns/s")
		b.ReportMetric(cps/float64(runtime.NumCPU()), "conns/s/core")
	}
}

func BenchmarkSimEngineEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		n := 0
		var tick func()
		tick = func() {
			if n++; n < 1000 {
				eng.After(1, tick)
			}
		}
		eng.After(0, tick)
		eng.RunUntilIdle()
	}
}

func BenchmarkSinkholeGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := trace.NewSinkhole(trace.SinkholeConfig{
			Seed: uint64(i + 1), Connections: 5000, Prefixes: 400,
		})
		if got := len(s.Generate()); got != 5000 {
			b.Fatalf("generated %d", got)
		}
	}
}

// ---------------------------------------------------------------------------
// Queue and spool hot paths (cmd/benchjson turns these into BENCH_queue.json).

// BenchmarkSpoolAppend measures the durable-accept hot path: one
// envelope+body framed write per accepted mail. The store is recreated
// every 8k appends so the benchmark stays append-only without growing
// the in-memory lane without bound.
func BenchmarkSpoolAppend(b *testing.B) {
	body := make([]byte, 1024)
	rcpts := []string{"a@remote.test", "b@remote.test"}
	store := spool.New(fsim.NewMem(costmodel.FSModel{}), "queue")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%8192 == 0 && i > 0 {
			b.StopTimer()
			store = spool.New(fsim.NewMem(costmodel.FSModel{}), "queue")
			b.StartTimer()
		}
		env := spool.Envelope{ID: fmt.Sprintf("Q%016X", i), Sender: "s@origin.test", Rcpts: rcpts}
		if err := store.Append(env, body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueThroughput measures end-to-end queue throughput with the
// durable spool in the loop: Enqueue (spool append) → worker pickup →
// instant delivery → Ack (spool remove).
func BenchmarkQueueThroughput(b *testing.B) {
	qm, err := queue.NewManager(queue.Config{
		Deliverer:   queue.DelivererFunc(func(item *queue.Item) error { return nil }),
		Store:       spool.New(fsim.NewMem(costmodel.FSModel{}), ""),
		ActiveLimit: 8,
		IntakeLimit: b.N + 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer qm.Close()
	body := make([]byte, 1024)
	rcpts := []string{"a@remote.test"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qm.Enqueue("s@origin.test", rcpts, body); err != nil {
			b.Fatal(err)
		}
	}
	if !qm.WaitIdle(60 * time.Second) {
		b.Fatal("queue did not drain")
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "mails/s")
	}
}

// ---------------------------------------------------------------------------
// MFS durability paths (cmd/benchjson turns these into BENCH_mfs.json).

// crashedMFSImage populates a WAL-mode store on a fault-injecting
// filesystem and power-cuts it, leaving mails mails' worth of commit
// records for recovery to replay.
func crashedMFSImage(b *testing.B, mails int) *fsim.Fault {
	b.Helper()
	fault := fsim.NewFault()
	store, err := mailstore.NewMFS(fault, "mfs", mfs.WithSync(true),
		mfs.WithWALRotateSize(1<<30)) // keep every commit in the log
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 1024)
	for i := 0; i < mails; i++ {
		rcpts := []string{fmt.Sprintf("u%02d", i%16)}
		if i%3 == 0 {
			rcpts = append(rcpts, fmt.Sprintf("u%02d", (i+1)%16), fmt.Sprintf("u%02d", (i+2)%16))
		}
		if err := store.Deliver(fmt.Sprintf("Q%016X", i), rcpts, body); err != nil {
			b.Fatal(err)
		}
	}
	fault.Crash()
	_ = store.Close()
	fault.Recover()
	return fault
}

// BenchmarkMFSRecovery measures crash recovery: reopening a store whose
// entire workload sits in the write-ahead log (the worst case — nothing
// was rotated into the files before the power cut).
func BenchmarkMFSRecovery(b *testing.B) {
	const mails = 400
	var replayed float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fault := crashedMFSImage(b, mails)
		b.StartTimer()
		store, err := mailstore.NewMFS(fault, "mfs", mfs.WithSync(true))
		if err != nil {
			b.Fatal(err)
		}
		rs := store.Recovery()
		if rs.Replayed == 0 {
			b.Fatal("recovery replayed nothing")
		}
		replayed += float64(rs.Replayed)
		b.StopTimer()
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(mails), "mails/recovery")
	b.ReportMetric(replayed/float64(b.N), "records/recovery")
}

// BenchmarkMFSCheckpoint measures the online checkpoint of a live store:
// WAL rotation plus a full copy of the shared and mailbox files.
func BenchmarkMFSCheckpoint(b *testing.B) {
	const mails = 400
	store, err := mailstore.NewMFS(fsim.NewMem(costmodel.FSModel{}), "mfs", mfs.WithSync(true))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	body := make([]byte, 1024)
	for i := 0; i < mails; i++ {
		rcpts := []string{fmt.Sprintf("u%02d", i%16)}
		if i%3 == 0 {
			rcpts = append(rcpts, fmt.Sprintf("u%02d", (i+1)%16), fmt.Sprintf("u%02d", (i+2)%16))
		}
		if err := store.Deliver(fmt.Sprintf("Q%016X", i), rcpts, body); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var bytes float64
	for i := 0; i < b.N; i++ {
		st, err := store.Checkpoint(fmt.Sprintf("ckpt%06d", i))
		if err != nil {
			b.Fatal(err)
		}
		bytes = float64(st.Bytes)
	}
	b.ReportMetric(bytes, "bytes/checkpoint")
}
