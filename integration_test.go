package repro

// Full-stack integration tests: the complete composition a deployment
// would run — hybrid SMTP server over TCP, postfix-style queue with a
// spool, the delivery agent writing through MFS on real files, and a live
// DNSBLv6 server over UDP feeding the connect-time check — driven by the
// synthetic workloads.

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/addr"
	"repro/internal/delivery"
	"repro/internal/dns"
	"repro/internal/dnsbl"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/queue"
	"repro/internal/smtp"
	"repro/internal/smtpserver"
	"repro/internal/spool"
	"repro/internal/trace"
	"repro/internal/workload"
)

// stack is one fully wired mail server.
type stack struct {
	fs    fsim.FS
	db    *access.DB
	store mailstore.Store
	agent *delivery.Agent
	qm    *queue.Manager
	srv   *smtpserver.Server
	addr  string
}

func startStack(t *testing.T, arch smtpserver.Architecture, storeName string, opts ...smtpserver.Option) *stack {
	t.Helper()
	const domain = "dept.example.edu"
	s := &stack{fs: fsim.NewOS(t.TempDir())}

	s.db = access.NewDB(domain)
	if err := access.Populate(s.db, domain, 400); err != nil {
		t.Fatal(err)
	}

	var err error
	switch storeName {
	case "mbox":
		s.store = mailstore.NewMbox(s.fs)
	case "mfs":
		s.store, err = mailstore.NewMFS(s.fs, "mfs")
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("bad store %q", storeName)
	}
	t.Cleanup(func() { s.store.Close() })

	s.agent = delivery.NewAgent(s.db, s.store)
	s.qm, err = queue.NewManager(queue.Config{
		Deliverer:   s.agent,
		Store:       spool.New(s.fs, ""),
		ActiveLimit: 8,
		IntakeLimit: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.qm.Close() })

	all := append([]smtpserver.Option{
		smtpserver.WithHostname("mx." + domain),
		smtpserver.WithArchitecture(arch),
		smtpserver.WithMaxWorkers(16),
		smtpserver.WithValidateRcpt(s.db.Valid),
		smtpserver.WithIdleTimeout(10 * time.Second),
	}, opts...)
	s.srv, err = smtpserver.New(s.qm.Enqueue, all...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.srv.Serve(ln) //nolint:errcheck // exits on Close
	t.Cleanup(func() { s.srv.Close() })
	s.addr = ln.Addr().String()
	return s
}

func TestFullStackUnivWorkload(t *testing.T) {
	for _, arch := range []smtpserver.Architecture{smtpserver.Vanilla, smtpserver.Hybrid} {
		t.Run(arch.String(), func(t *testing.T) {
			s := startStack(t, arch, "mfs")
			conns := trace.NewUniv(trace.UnivConfig{Seed: 21, Connections: 400}).Generate()
			want := trace.Summarize(conns)

			res := workload.RunClosed(workload.ClosedConfig{
				Addr: s.addr, Concurrency: 12, Timeout: 10 * time.Second,
			}, conns)
			if res.Errors != 0 {
				t.Fatalf("replay errors: %+v", res)
			}
			if res.GoodMails != int64(want.Delivering) {
				t.Fatalf("good mails = %d, trace delivering = %d", res.GoodMails, want.Delivering)
			}
			if res.BounceConns != int64(want.Bounces) || res.Unfinished != int64(want.Unfinished) {
				t.Fatalf("bounce/unfinished mismatch: %+v vs %+v", res, want)
			}

			if !s.qm.WaitIdle(10 * time.Second) {
				t.Fatal("queue never drained")
			}
			qs := s.qm.Stats()
			if qs.Delivered != int64(want.Delivering) || qs.Dead != 0 {
				t.Fatalf("queue stats = %+v", qs)
			}

			// Every valid recipient copy landed in a mailbox.
			ds := s.agent.Stats()
			if ds.Mails != int64(want.Delivering) {
				t.Fatalf("delivered mails = %d, want %d", ds.Mails, want.Delivering)
			}

			// Spool is empty after successful delivery.
			if leftovers := s.fs.List("queue/incoming/"); len(leftovers) != 0 {
				t.Fatalf("spool leftovers: %v", leftovers)
			}

			// Hybrid never delegates bounce-only or unfinished connections.
			st := s.srv.Stats()
			if arch == smtpserver.Hybrid {
				if st.Handoffs != int64(want.Delivering) {
					t.Fatalf("handoffs = %d, want %d", st.Handoffs, want.Delivering)
				}
			}
		})
	}
}

func TestFullStackMailboxContentsExact(t *testing.T) {
	s := startStack(t, smtpserver.Hybrid, "mfs")
	client, err := smtp.Dial(s.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Helo("test.client"); err != nil {
		t.Fatal(err)
	}
	body := "Subject: exact\r\n\r\nline one\r\n.dot-stuffed line\r\nlast\r\n"
	n, err := client.Send("sender@remote.example",
		[]string{"user0001@dept.example.edu", "user0002@dept.example.edu"}, []byte(body))
	if err != nil || n != 2 {
		t.Fatalf("send = %d, %v", n, err)
	}
	client.Quit()
	if !s.qm.WaitIdle(5 * time.Second) {
		t.Fatal("queue never drained")
	}
	for _, box := range []string{"user0001", "user0002"} {
		ids, err := s.store.List(box)
		if err != nil || len(ids) != 1 {
			t.Fatalf("%s: list = %v, %v", box, ids, err)
		}
		got, err := s.store.Read(box, ids[0])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != body {
			t.Fatalf("%s: body = %q, want %q", box, got, body)
		}
	}
	// Single copy on disk: the MFS shared store holds exactly one record.
	mfsStore := s.store.(*mailstore.MFS)
	if st := mfsStore.Underlying().Stats(); st.SharedRecords != 1 || st.SharedRefs != 2 {
		t.Fatalf("MFS stats = %+v", st)
	}
}

func TestFullStackWithLiveDNSBL(t *testing.T) {
	// A real DNSBLv6 server over UDP; the SMTP server rejects listed
	// clients at accept time. Loopback clients are judged by their
	// connecting IP (127.0.0.1), so the test controls listing by adding
	// or removing that address.
	const zone = "bl6.test.example"
	list := dnsbl.NewList(zone)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dnsSrv := dns.NewServer(pc, &dnsbl.V6Handler{List: list})
	defer dnsSrv.Close()

	lookup := dnsbl.New(zone,
		dnsbl.WithUpstreams(dnsSrv.Addr().String()),
		dnsbl.WithTTL(10*time.Millisecond))
	defer lookup.Close()
	s := startStack(t, smtpserver.Hybrid, "mfs", smtpserver.WithCheckClient(
		func(ipText string) bool {
			ip, err := addr.ParseIPv4(ipText)
			if err != nil {
				return false
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			res, err := lookup.Lookup(ctx, ip)
			return err == nil && res.Listed
		}))

	send := func() error {
		client, err := smtp.Dial(s.addr, 5*time.Second)
		if err != nil {
			return err
		}
		defer client.Abort()
		if err := client.Helo("h"); err != nil {
			return err
		}
		if _, err := client.Send("s@r.example",
			[]string{"user0003@dept.example.edu"}, []byte("m")); err != nil {
			return err
		}
		return client.Quit()
	}

	// Clean client: accepted.
	if err := send(); err != nil {
		t.Fatalf("clean client rejected: %v", err)
	}
	// Blacklist 127.0.0.1 and wait out the short cache TTL: rejected with 554.
	list.Add(addr.MustParseIPv4("127.0.0.1"), dnsbl.CodeZombie)
	time.Sleep(20 * time.Millisecond)
	err = send()
	if err == nil || !strings.Contains(err.Error(), "554") {
		t.Fatalf("listed client err = %v, want 554 banner", err)
	}
	if s.srv.Stats().Blacklisted != 1 {
		t.Fatalf("blacklisted count = %d", s.srv.Stats().Blacklisted)
	}
	// Delist (cache expires quickly): accepted again.
	list.Remove(addr.MustParseIPv4("127.0.0.1"))
	time.Sleep(20 * time.Millisecond)
	if err := send(); err != nil {
		t.Fatalf("delisted client rejected: %v", err)
	}
	if dnsSrv.Queries() == 0 {
		t.Fatal("DNSBL server never queried")
	}
}

func TestFullStackPersistenceAcrossRestart(t *testing.T) {
	// Mail delivered before a shutdown must be readable by a fresh stack
	// over the same directory (MFS on-disk durability end to end).
	dir := t.TempDir()
	fs := fsim.NewOS(dir)
	deliverOnce := func(id string) {
		store, err := mailstore.NewMFS(fs, "mfs")
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		if err := store.Deliver(id, []string{"alice", "bob"}, []byte("persist "+id)); err != nil {
			t.Fatal(err)
		}
	}
	deliverOnce("Q1")
	deliverOnce("Q2") // a second "process lifetime" appends to the same files

	store, err := mailstore.NewMFS(fs, "mfs")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for _, box := range []string{"alice", "bob"} {
		ids, err := store.List(box)
		if err != nil || len(ids) != 2 {
			t.Fatalf("%s after restart: %v, %v", box, ids, err)
		}
		got, err := store.Read(box, "Q2")
		if err != nil || string(got) != "persist Q2" {
			t.Fatalf("%s read = %q, %v", box, got, err)
		}
	}
}

func TestFullStackBackpressure(t *testing.T) {
	// A stalled delivery agent fills the bounded queue; the server must
	// answer 452 instead of accepting mail it cannot durably queue, and
	// recover once the agent drains.
	const domain = "dept.example.edu"
	block := make(chan struct{})
	var blocked queue.DelivererFunc = func(item *queue.Item) error {
		<-block
		return nil
	}
	qm, err := queue.NewManager(queue.Config{Deliverer: blocked, ActiveLimit: 1, IntakeLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer qm.Close()
	db := access.NewDB(domain)
	access.Populate(db, domain, 10)
	srv, err := smtpserver.New(qm.Enqueue,
		smtpserver.WithHostname("mx."+domain),
		smtpserver.WithArchitecture(smtpserver.Hybrid),
		smtpserver.WithValidateRcpt(db.Valid),
	)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	client, err := smtp.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client.Helo("h")
	saw452 := false
	for i := 0; i < 5; i++ {
		client.Mail("s@r.example")
		client.Rcpt(fmt.Sprintf("user%04d@%s", i, domain))
		if err := client.Data([]byte("m")); err != nil {
			if strings.Contains(err.Error(), "452") {
				saw452 = true
				break
			}
			t.Fatal(err)
		}
	}
	if !saw452 {
		t.Fatal("queue backpressure never surfaced as 452")
	}
	// Unblock and verify the connection recovers.
	close(block)
	if !qm.WaitIdle(5 * time.Second) {
		t.Fatal("queue never drained")
	}
	client.Mail("s@r.example")
	client.Rcpt("user0001@" + domain)
	if err := client.Data([]byte("after recovery")); err != nil {
		t.Fatalf("post-recovery send failed: %v", err)
	}
	client.Quit()
}
